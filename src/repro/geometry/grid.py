"""Uniform grids over a rectangular data space.

The buffer manager divides the data space into grid-like blocks
(Section V-A of the paper); the motion predictor assigns visit
probabilities to grid cells (Section V-B).  :class:`Grid` provides the
shared cell arithmetic: point -> cell, cell -> box, cell neighbourhoods,
and the cells overlapped by a query box.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.errors import GeometryError
from repro.geometry.box import Box

__all__ = ["Grid", "CellId"]

# A cell is addressed by its integer coordinates along each axis.
CellId = tuple[int, ...]


class Grid:
    """A uniform grid partition of a 2-D (or n-D) box.

    Parameters
    ----------
    space:
        The data space to partition.
    shape:
        Number of cells along each axis; must match ``space.ndim``.
    """

    def __init__(self, space: Box, shape: Sequence[int]) -> None:
        shape_arr = tuple(int(s) for s in shape)
        if len(shape_arr) != space.ndim:
            raise GeometryError(
                f"grid shape {shape_arr} does not match space dimension {space.ndim}"
            )
        if any(s <= 0 for s in shape_arr):
            raise GeometryError(f"grid shape must be positive, got {shape_arr}")
        if space.is_degenerate():
            raise GeometryError("cannot grid a degenerate space")
        self._space = space
        self._shape = shape_arr
        self._cell_size = space.extents / np.asarray(shape_arr, dtype=float)

    @property
    def space(self) -> Box:
        """The partitioned data space."""
        return self._space

    @property
    def shape(self) -> tuple[int, ...]:
        """Cells per axis."""
        return self._shape

    @property
    def ndim(self) -> int:
        return self._space.ndim

    @property
    def cell_size(self) -> np.ndarray:
        """Side lengths of one cell."""
        return self._cell_size

    @property
    def cell_count(self) -> int:
        """Total number of cells."""
        return int(np.prod(self._shape))

    @property
    def cell_volume(self) -> float:
        """Volume of one cell."""
        return float(np.prod(self._cell_size))

    # -- addressing ----------------------------------------------------------

    def is_valid_cell(self, cell: CellId) -> bool:
        """True when ``cell`` addresses a cell inside the grid."""
        return len(cell) == self.ndim and all(
            0 <= c < s for c, s in zip(cell, self._shape)
        )

    def cell_of_point(self, point: Sequence[float]) -> CellId:
        """The cell containing ``point`` (clamped to the grid edges).

        Clamping lets callers ask for the nearest cell of a point that
        drifted slightly outside the space (predicted positions often
        do); points far outside are still clamped to the border cell.
        """
        p = np.asarray(point, dtype=float)
        if p.shape[0] != self.ndim:
            raise GeometryError(
                f"point dimension {p.shape[0]} does not match grid {self.ndim}"
            )
        rel = (p - self._space.low) / self._cell_size
        idx = np.clip(np.floor(rel).astype(int), 0, np.asarray(self._shape) - 1)
        return tuple(int(i) for i in idx)

    def cell_box(self, cell: CellId) -> Box:
        """The box covered by ``cell``."""
        if not self.is_valid_cell(cell):
            raise GeometryError(f"invalid cell {cell} for grid shape {self._shape}")
        idx = np.asarray(cell, dtype=float)
        low = self._space.low + idx * self._cell_size
        return Box(low, low + self._cell_size)

    def cell_center(self, cell: CellId) -> np.ndarray:
        """Centre point of ``cell``."""
        return self.cell_box(cell).center

    def cells(self) -> Iterator[CellId]:
        """Iterate over every cell id in row-major order."""
        for flat in range(self.cell_count):
            yield self.unflatten(flat)

    def flatten(self, cell: CellId) -> int:
        """Row-major linear index of ``cell``."""
        if not self.is_valid_cell(cell):
            raise GeometryError(f"invalid cell {cell} for grid shape {self._shape}")
        flat = 0
        for c, s in zip(cell, self._shape):
            flat = flat * s + c
        return flat

    def unflatten(self, flat: int) -> CellId:
        """Inverse of :meth:`flatten`."""
        if not 0 <= flat < self.cell_count:
            raise GeometryError(f"flat index {flat} out of range")
        coords = []
        for s in reversed(self._shape):
            coords.append(flat % s)
            flat //= s
        return tuple(reversed(coords))

    # -- queries ---------------------------------------------------------------

    def cells_overlapping(self, box: Box) -> list[CellId]:
        """All cells whose area strictly overlaps ``box``.

        Cells merely touched on a boundary of measure zero are excluded,
        matching how the buffer manager counts a block as "needed" only
        when the query frame actually covers part of it.
        """
        if box.ndim != self.ndim:
            raise GeometryError(
                f"box dimension {box.ndim} does not match grid {self.ndim}"
            )
        clipped = box.intersection(self._space)
        if clipped is None:
            return []
        lo_cell = self.cell_of_point(clipped.low)
        hi_cell = self.cell_of_point(clipped.high)
        # Shrink the upper cell when the box ends exactly on a boundary.
        hi_adjusted = []
        for axis, c in enumerate(hi_cell):
            cell_low = self._space.low[axis] + c * self._cell_size[axis]
            if clipped.high[axis] == cell_low and c > lo_cell[axis]:
                c -= 1
            hi_adjusted.append(c)
        ranges = [
            range(lo, hi + 1) for lo, hi in zip(lo_cell, tuple(hi_adjusted))
        ]
        result: list[CellId] = []
        self._product(ranges, (), result)
        return result

    def _product(
        self,
        ranges: list[range],
        prefix: CellId,
        out: list[CellId],
    ) -> None:
        if not ranges:
            out.append(prefix)
            return
        for value in ranges[0]:
            self._product(ranges[1:], prefix + (value,), out)

    def neighbors(self, cell: CellId, *, diagonal: bool = True) -> list[CellId]:
        """Cells adjacent to ``cell`` (8-neighbourhood by default in 2-D)."""
        if not self.is_valid_cell(cell):
            raise GeometryError(f"invalid cell {cell} for grid shape {self._shape}")
        deltas: list[CellId] = []
        self._product([range(-1, 2)] * self.ndim, (), deltas)
        result = []
        for delta in deltas:
            if all(d == 0 for d in delta):
                continue
            if not diagonal and sum(abs(d) for d in delta) != 1:
                continue
            candidate = tuple(c + d for c, d in zip(cell, delta))
            if self.is_valid_cell(candidate):
                result.append(candidate)
        return result

    def ring(self, cell: CellId, radius: int) -> list[CellId]:
        """Cells at Chebyshev distance exactly ``radius`` from ``cell``."""
        if radius < 0:
            raise GeometryError("radius must be non-negative")
        if radius == 0:
            return [cell] if self.is_valid_cell(cell) else []
        result = []
        deltas: list[CellId] = []
        self._product([range(-radius, radius + 1)] * self.ndim, (), deltas)
        for delta in deltas:
            if max(abs(d) for d in delta) != radius:
                continue
            candidate = tuple(c + d for c, d in zip(cell, delta))
            if self.is_valid_cell(candidate):
                result.append(candidate)
        return result

    def __repr__(self) -> str:
        return f"Grid(shape={self._shape}, space={self._space!r})"
