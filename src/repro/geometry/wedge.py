"""View wedges: direction-limited query regions.

The paper's clients have a *view direction* as well as a position; the
query frame is really the part of the world in front of the user.  A
:class:`Wedge` models that 2-D view frustum: a circular sector with an
apex (the client), a heading, a half-angle and a range.  It supports
exact point containment and exact box intersection, plus a bounding box
so wedge-shaped interest can drive the box-based access methods with a
client-side refinement step.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.errors import GeometryError
from repro.geometry.box import Box
from repro.geometry.vector import angle_difference

__all__ = ["Wedge"]


def _segments_intersect(
    p1: Sequence[float],
    p2: Sequence[float],
    q1: Sequence[float],
    q2: Sequence[float],
) -> bool:
    """Exact 2-D segment intersection (touching counts)."""

    def orient(
        a: Sequence[float], b: Sequence[float], c: Sequence[float]
    ) -> float:
        return (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])

    def on_segment(
        a: Sequence[float], b: Sequence[float], c: Sequence[float]
    ) -> bool:
        return (
            min(a[0], b[0]) <= c[0] <= max(a[0], b[0])
            and min(a[1], b[1]) <= c[1] <= max(a[1], b[1])
        )

    d1 = orient(q1, q2, p1)
    d2 = orient(q1, q2, p2)
    d3 = orient(p1, p2, q1)
    d4 = orient(p1, p2, q2)
    if ((d1 > 0) != (d2 > 0)) and ((d3 > 0) != (d4 > 0)):
        return True
    if d1 == 0 and on_segment(q1, q2, p1):
        return True
    if d2 == 0 and on_segment(q1, q2, p2):
        return True
    if d3 == 0 and on_segment(p1, p2, q1):
        return True
    if d4 == 0 and on_segment(p1, p2, q2):
        return True
    return False


class Wedge:
    """A circular sector in the plane (a 2-D view frustum).

    Parameters
    ----------
    apex:
        The viewer's position.
    heading:
        View direction in radians (0 = +x, counter-clockwise).
    half_angle:
        Half the field of view, in ``(0, pi]``.  ``pi`` makes the wedge
        a full disk.
    radius:
        View range; must be positive.
    """

    def __init__(
        self,
        apex: Sequence[float],
        heading: float,
        half_angle: float,
        radius: float,
    ) -> None:
        apex_arr = np.asarray(apex, dtype=float)
        if apex_arr.shape != (2,):
            raise GeometryError(f"apex must be a 2-D point, got {apex_arr.shape}")
        if not 0.0 < half_angle <= math.pi:
            raise GeometryError(
                f"half_angle must be in (0, pi], got {half_angle}"
            )
        if radius <= 0:
            raise GeometryError(f"radius must be positive, got {radius}")
        self._apex = apex_arr
        self._apex.setflags(write=False)
        self._heading = float(heading) % (2.0 * math.pi)
        self._half_angle = float(half_angle)
        self._radius = float(radius)

    @property
    def apex(self) -> np.ndarray:
        return self._apex

    @property
    def heading(self) -> float:
        return self._heading

    @property
    def half_angle(self) -> float:
        return self._half_angle

    @property
    def radius(self) -> float:
        return self._radius

    @property
    def is_full_disk(self) -> bool:
        return self._half_angle >= math.pi

    def area(self) -> float:
        """Sector area."""
        return self._half_angle * self._radius**2

    def _edge_points(self) -> tuple[np.ndarray, np.ndarray]:
        left = self._heading + self._half_angle
        right = self._heading - self._half_angle
        return (
            self._apex
            + self._radius * np.array([math.cos(left), math.sin(left)]),
            self._apex
            + self._radius * np.array([math.cos(right), math.sin(right)]),
        )

    def contains_point(self, point: Sequence[float]) -> bool:
        """True when ``point`` lies inside the sector (boundary included)."""
        p = np.asarray(point, dtype=float)
        if p.shape != (2,):
            raise GeometryError(f"point must be 2-D, got {p.shape}")
        delta = p - self._apex
        dist2 = float(delta @ delta)
        if dist2 > self._radius**2 + 1e-12:
            return False
        if dist2 == 0.0 or self.is_full_disk:
            return True
        angle = math.atan2(float(delta[1]), float(delta[0]))
        return angle_difference(angle, self._heading) <= self._half_angle + 1e-12

    def bounding_box(self) -> Box:
        """Tight axis-aligned bounds of the sector.

        Includes the apex, both edge endpoints, and the axis-extreme
        points of the arc that fall inside the angular range.
        """
        points = [self._apex, *self._edge_points()]
        for axis_angle in (0.0, math.pi / 2, math.pi, 3 * math.pi / 2):
            if angle_difference(axis_angle, self._heading) <= self._half_angle:
                points.append(
                    self._apex
                    + self._radius
                    * np.array([math.cos(axis_angle), math.sin(axis_angle)])
                )
        return Box.bounding(points)

    def intersects_box(self, box: Box) -> bool:
        """Exact sector/box intersection test.

        Cases: a box corner inside the sector; the apex inside the box;
        a sector edge segment crossing a box edge; or the arc crossing
        the box (the box's nearest point to the apex is within range
        while its angular interval overlaps the sector's).
        """
        if box.ndim != 2:
            raise GeometryError(f"box must be 2-D, got {box.ndim}-D")
        # Quick reject: box entirely out of range.
        if box.min_distance_to_point(self._apex) > self._radius:
            return False
        if box.contains_point(self._apex):
            return True
        for corner in box.corners():
            if self.contains_point(corner):
                return True
        # Sector straight edges vs box edges.
        corners = [
            np.array([box.low[0], box.low[1]]),
            np.array([box.high[0], box.low[1]]),
            np.array([box.high[0], box.high[1]]),
            np.array([box.low[0], box.high[1]]),
        ]
        box_edges = [
            (corners[0], corners[1]),
            (corners[1], corners[2]),
            (corners[2], corners[3]),
            (corners[3], corners[0]),
        ]
        if not self.is_full_disk:
            left_end, right_end = self._edge_points()
            for edge_end in (left_end, right_end):
                for q1, q2 in box_edges:
                    if _segments_intersect(self._apex, edge_end, q1, q2):
                        return True
        # Arc vs box: the nearest box point is in range (checked above);
        # it remains to check the angular overlap of the box with the
        # sector when the box pierces the arc region.  Sample the box
        # boundary at its closest approach: take the clamped projection
        # of the apex onto the box and points of the box edges nearest
        # to the arc band.
        nearest = np.clip(self._apex, box.low, box.high)
        if self.contains_point(nearest):
            return True
        # Densely check box-edge points against the sector.  The edges
        # are straight, the sector convex in angle/radius, so a modest
        # sampling is exact in practice for the block sizes used here;
        # 16 samples per edge bounds the error well below a grid cell.
        for q1, q2 in box_edges:
            for t in np.linspace(0.0, 1.0, 17):
                if self.contains_point(q1 + t * (q2 - q1)):
                    return True
        return False

    def __repr__(self) -> str:
        return (
            f"Wedge(apex=({self._apex[0]:g}, {self._apex[1]:g}), "
            f"heading={self._heading:.3f}, half_angle={self._half_angle:.3f}, "
            f"radius={self._radius:g})"
        )
