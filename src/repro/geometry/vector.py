"""Small vector helpers shared across packages.

These are thin, explicit wrappers over numpy used where a full linear
algebra import would obscure intent (headings, sector angles, midpoint
arithmetic on mesh vertices).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.errors import GeometryError

__all__ = [
    "as_vector",
    "norm",
    "normalize",
    "distance",
    "midpoint",
    "heading_angle",
    "angle_difference",
    "sector_of_angle",
]


def as_vector(value: Sequence[float]) -> np.ndarray:
    """Coerce to a 1-D float array."""
    arr = np.asarray(value, dtype=float)
    if arr.ndim != 1:
        raise GeometryError(f"expected a 1-D vector, got shape {arr.shape}")
    return arr


def norm(vector: Sequence[float]) -> float:
    """Euclidean length."""
    arr = as_vector(vector)
    return float(math.sqrt(float(np.dot(arr, arr))))


def normalize(vector: Sequence[float]) -> np.ndarray:
    """Unit vector in the same direction; raises on the zero vector."""
    arr = as_vector(vector)
    length = norm(arr)
    if length == 0.0:
        raise GeometryError("cannot normalize the zero vector")
    return arr / length


def distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Euclidean distance between two points."""
    return norm(as_vector(a) - as_vector(b))


def midpoint(a: Sequence[float], b: Sequence[float]) -> np.ndarray:
    """The point halfway between ``a`` and ``b``."""
    return (as_vector(a) + as_vector(b)) / 2.0


def heading_angle(velocity: Sequence[float]) -> float:
    """Heading of a 2-D velocity in radians within ``[0, 2*pi)``.

    Angle 0 points along +x, and angles grow counter-clockwise.
    """
    v = as_vector(velocity)
    if v.shape[0] < 2:
        raise GeometryError("heading requires at least 2 components")
    angle = math.atan2(float(v[1]), float(v[0]))
    if angle < 0:
        angle += 2.0 * math.pi
    return angle


def angle_difference(a: float, b: float) -> float:
    """Smallest absolute difference between two angles in radians."""
    diff = (a - b) % (2.0 * math.pi)
    return min(diff, 2.0 * math.pi - diff)


def sector_of_angle(angle: float, k: int) -> int:
    """Which of ``k`` equal sectors around the origin contains ``angle``.

    Sector ``i`` spans ``[i * 2*pi/k, (i+1) * 2*pi/k)``; this is how the
    buffer manager maps a block's bearing to one of the ``k`` movement
    directions.
    """
    if k <= 0:
        raise GeometryError("sector count must be positive")
    wrapped = angle % (2.0 * math.pi)
    sector = int(wrapped / (2.0 * math.pi / k))
    # Guard against floating point landing exactly on 2*pi.
    return min(sector, k - 1)
