"""Axis-aligned n-dimensional boxes and their algebra.

The whole system reasons about axis-aligned boxes: query windows are
2-D/3-D boxes, wavelet support regions are bounded by 3-D boxes, index
entries are 4-D boxes (space x coefficient value), and the continuous
retrieval algorithm needs the *difference* ``Q_t - Q_{t-1}`` decomposed
into disjoint boxes (Section IV of the paper splits the difference along
one axis; :meth:`Box.difference` generalises that split to n dimensions).

Boxes are closed: a point on the boundary is contained.  Degenerate
boxes (zero extent along some axis) are allowed -- a point is a box.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import GeometryError

__all__ = ["Box", "union_bounds", "total_volume"]


class Box:
    """A closed axis-aligned box ``[low_i, high_i]`` in n dimensions.

    Parameters
    ----------
    low, high:
        Sequences of per-axis bounds.  ``low[i] <= high[i]`` must hold
        for every axis ``i``.

    Examples
    --------
    >>> q = Box((0, 0), (10, 5))
    >>> q.volume
    50.0
    >>> q.contains_point((3, 4))
    True
    """

    __slots__ = ("_low", "_high")

    def __init__(self, low: Sequence[float], high: Sequence[float]) -> None:
        low_arr = np.asarray(low, dtype=float)
        high_arr = np.asarray(high, dtype=float)
        if low_arr.ndim != 1 or high_arr.ndim != 1:
            raise GeometryError("box bounds must be 1-D sequences")
        if low_arr.shape != high_arr.shape:
            raise GeometryError(
                f"low and high have different dimensions: "
                f"{low_arr.shape[0]} vs {high_arr.shape[0]}"
            )
        if low_arr.shape[0] == 0:
            raise GeometryError("boxes must have at least one dimension")
        if np.any(low_arr > high_arr):
            raise GeometryError(f"inverted box: low={low_arr} high={high_arr}")
        if not (np.all(np.isfinite(low_arr)) and np.all(np.isfinite(high_arr))):
            raise GeometryError("box bounds must be finite")
        self._low = low_arr
        self._high = high_arr
        self._low.setflags(write=False)
        self._high.setflags(write=False)

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_point(cls, point: Sequence[float]) -> "Box":
        """A degenerate box covering a single point."""
        return cls(point, point)

    @classmethod
    def from_center(cls, center: Sequence[float], extents: Sequence[float]) -> "Box":
        """A box centred at ``center`` with full side lengths ``extents``."""
        c = np.asarray(center, dtype=float)
        e = np.asarray(extents, dtype=float)
        if np.any(e < 0):
            raise GeometryError("extents must be non-negative")
        return cls(c - e / 2.0, c + e / 2.0)

    @classmethod
    def bounding(cls, points: Iterable[Sequence[float]]) -> "Box":
        """The minimum bounding box of a non-empty collection of points."""
        arr = np.asarray(list(points), dtype=float)
        if arr.size == 0:
            raise GeometryError("cannot bound an empty point set")
        if arr.ndim == 1:
            arr = arr.reshape(1, -1)
        return cls(arr.min(axis=0), arr.max(axis=0))

    # -- basic properties ----------------------------------------------------

    @property
    def low(self) -> np.ndarray:
        """Per-axis lower bounds (read-only array)."""
        return self._low

    @property
    def high(self) -> np.ndarray:
        """Per-axis upper bounds (read-only array)."""
        return self._high

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self._low.shape[0]

    @property
    def center(self) -> np.ndarray:
        """The box centre point."""
        return (self._low + self._high) / 2.0

    @property
    def extents(self) -> np.ndarray:
        """Per-axis side lengths."""
        return self._high - self._low

    @property
    def volume(self) -> float:
        """Product of side lengths (area in 2-D, length in 1-D)."""
        return float(np.prod(self.extents))

    @property
    def margin(self) -> float:
        """Sum of side lengths (the R*-tree ``margin`` heuristic)."""
        return float(np.sum(self.extents))

    def is_degenerate(self) -> bool:
        """True when at least one axis has zero extent."""
        return bool(np.any(self._high == self._low))

    # -- predicates ----------------------------------------------------------

    def _check_same_dim(self, other: "Box") -> None:
        if other.ndim != self.ndim:
            raise GeometryError(
                f"dimension mismatch: {self.ndim} vs {other.ndim}"
            )

    def contains_point(self, point: Sequence[float]) -> bool:
        """True when ``point`` lies inside or on the boundary."""
        p = np.asarray(point, dtype=float)
        if p.shape != self._low.shape:
            raise GeometryError(
                f"point dimension {p.shape} does not match box {self._low.shape}"
            )
        return bool(np.all(p >= self._low) and np.all(p <= self._high))

    def contains_box(self, other: "Box") -> bool:
        """True when ``other`` lies fully inside this box."""
        self._check_same_dim(other)
        return bool(
            np.all(other._low >= self._low) and np.all(other._high <= self._high)
        )

    def intersects(self, other: "Box") -> bool:
        """True when the closed boxes share at least one point."""
        self._check_same_dim(other)
        return bool(
            np.all(self._low <= other._high) and np.all(other._low <= self._high)
        )

    def strictly_intersects(self, other: "Box") -> bool:
        """True when the boxes share a region of positive volume."""
        self._check_same_dim(other)
        return bool(
            np.all(self._low < other._high) and np.all(other._low < self._high)
        )

    # -- algebra ---------------------------------------------------------------

    def intersection(self, other: "Box") -> "Box | None":
        """The overlapping box, or ``None`` when the boxes are disjoint."""
        self._check_same_dim(other)
        low = np.maximum(self._low, other._low)
        high = np.minimum(self._high, other._high)
        if np.any(low > high):
            return None
        return Box(low, high)

    def intersection_volume(self, other: "Box") -> float:
        """Volume of the overlap (0.0 when disjoint)."""
        inter = self.intersection(other)
        return 0.0 if inter is None else inter.volume

    def union(self, other: "Box") -> "Box":
        """The minimum box enclosing both boxes."""
        self._check_same_dim(other)
        return Box(
            np.minimum(self._low, other._low), np.maximum(self._high, other._high)
        )

    def enlargement(self, other: "Box") -> float:
        """Extra volume needed to grow this box to also cover ``other``.

        This is the Guttman insertion heuristic: ``vol(union) - vol(self)``.
        """
        return self.union(other).volume - self.volume

    def difference(self, other: "Box") -> list["Box"]:
        """Decompose ``self - other`` into disjoint boxes.

        This generalises the paper's split of the new query frame region
        ``Q_t - Q_{t-1}`` along the x-axis (Section IV, Figure 3): we
        sweep the axes in order, slicing off the part of ``self`` that
        lies below/above ``other`` on each axis and shrinking the
        remaining core.  At most ``2 * ndim`` boxes are produced and they
        tile ``self - other`` exactly (their volumes sum to
        ``self.volume - overlap.volume``).

        Returns an empty list when ``other`` covers ``self`` and
        ``[self]`` when they are disjoint.
        """
        inter = self.intersection(other)
        if inter is None:
            return [self]
        if other.contains_box(self):
            return []
        pieces: list[Box] = []
        low = self._low.copy()
        high = self._high.copy()
        for axis in range(self.ndim):
            if low[axis] < inter._low[axis]:
                piece_low = low.copy()
                piece_high = high.copy()
                piece_high[axis] = inter._low[axis]
                pieces.append(Box(piece_low, piece_high))
                low[axis] = inter._low[axis]
            if inter._high[axis] < high[axis]:
                piece_low = low.copy()
                piece_high = high.copy()
                piece_low[axis] = inter._high[axis]
                pieces.append(Box(piece_low, piece_high))
                high[axis] = inter._high[axis]
        # Drop zero-volume slivers produced when self only touches other.
        return [p for p in pieces if p.volume > 0.0 or p.is_degenerate()]

    def translated(self, offset: Sequence[float]) -> "Box":
        """A copy shifted by ``offset``."""
        off = np.asarray(offset, dtype=float)
        return Box(self._low + off, self._high + off)

    def scaled_about_center(self, factor: float) -> "Box":
        """A copy scaled about its own centre by ``factor >= 0``."""
        if factor < 0:
            raise GeometryError("scale factor must be non-negative")
        return Box.from_center(self.center, self.extents * factor)

    def expanded(self, amount: float) -> "Box":
        """A copy grown by ``amount`` on every side (may not shrink past a point)."""
        half = self.extents / 2.0
        grow = np.maximum(half + amount, 0.0)
        return Box(self.center - grow, self.center + grow)

    def augment(self, low_extra: Sequence[float], high_extra: Sequence[float]) -> "Box":
        """Lift this box into a higher dimension by appending new bounds.

        Used to build the 4-D (x, y, z, w) index boxes from a 3-D support
        region MBB plus a coefficient-value interval.
        """
        lo = np.asarray(low_extra, dtype=float)
        hi = np.asarray(high_extra, dtype=float)
        return Box(np.concatenate([self._low, lo]), np.concatenate([self._high, hi]))

    def project(self, axes: Sequence[int]) -> "Box":
        """The projection of this box onto the given axes (in order)."""
        idx = list(axes)
        return Box(self._low[idx], self._high[idx])

    def min_distance_to_point(self, point: Sequence[float]) -> float:
        """Euclidean distance from ``point`` to the nearest box point."""
        p = np.asarray(point, dtype=float)
        d = np.maximum(np.maximum(self._low - p, p - self._high), 0.0)
        return float(math.sqrt(float(np.dot(d, d))))

    def corners(self) -> Iterator[np.ndarray]:
        """Iterate over all ``2**ndim`` corner points."""
        n = self.ndim
        for mask in range(1 << n):
            corner = np.where(
                [(mask >> axis) & 1 for axis in range(n)], self._high, self._low
            )
            yield corner.astype(float)

    # -- dunder --------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Box):
            return NotImplemented
        return (
            self.ndim == other.ndim
            and bool(np.all(self._low == other._low))
            and bool(np.all(self._high == other._high))
        )

    def __hash__(self) -> int:
        return hash((tuple(self._low), tuple(self._high)))

    def __repr__(self) -> str:
        lo = ", ".join(f"{v:g}" for v in self._low)
        hi = ", ".join(f"{v:g}" for v in self._high)
        return f"Box([{lo}], [{hi}])"


def union_bounds(boxes: Iterable[Box]) -> Box:
    """The minimum box enclosing every box in a non-empty collection."""
    iterator = iter(boxes)
    try:
        result = next(iterator)
    except StopIteration:
        raise GeometryError("cannot bound an empty box collection") from None
    for box in iterator:
        result = result.union(box)
    return result


def total_volume(boxes: Sequence[Box]) -> float:
    """Sum of volumes of a collection of (assumed disjoint) boxes."""
    return float(sum(box.volume for box in boxes))
