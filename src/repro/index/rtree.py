"""Guttman R-tree (SIGMOD 1984), implemented from scratch.

This is the baseline dynamic spatial index of the paper (reference
[16]).  It supports n-dimensional boxes, quadratic-split insertion,
deletion with tree condensation, and window queries that account node
accesses in an :class:`~repro.index.stats.IOStats`.

The default node capacity of 20 follows the paper's experimental setup
(4 KB pages); the minimum fill is 40 % of the maximum, the customary
value that also matches the R*-tree defaults.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

from repro.errors import IndexError_
from repro.geometry.box import Box
from repro.index.node import Entry, Node
from repro.index.stats import IOStats

__all__ = ["RTree", "DEFAULT_NODE_CAPACITY"]

DEFAULT_NODE_CAPACITY = 20


class RTree:
    """A dynamic R-tree over n-dimensional boxes.

    Parameters
    ----------
    max_entries:
        Node capacity ``M`` (default 20, the paper's setting for 4 KB
        pages).
    min_entries:
        Minimum fill ``m``; defaults to ``max(2, int(0.4 * M))``.
    stats:
        Optional shared :class:`IOStats`; a private one is created when
        omitted.

    Notes
    -----
    The tree is dimension-agnostic: the first inserted box fixes the
    dimensionality and later operations must match it.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_NODE_CAPACITY,
        min_entries: int | None = None,
        *,
        stats: IOStats | None = None,
    ) -> None:
        if max_entries < 2:
            raise IndexError_(f"max_entries must be >= 2, got {max_entries}")
        if min_entries is None:
            min_entries = max(2, int(0.4 * max_entries))
        if not 1 <= min_entries <= max_entries // 2:
            raise IndexError_(
                f"min_entries must be in [1, {max_entries // 2}], got {min_entries}"
            )
        self._max = max_entries
        self._min = min_entries
        self._root = Node(level=0)
        self._size = 0
        self._ndim: int | None = None
        self.stats = stats if stats is not None else IOStats()

    # -- basic accessors ----------------------------------------------------------

    @property
    def max_entries(self) -> int:
        return self._max

    @property
    def min_entries(self) -> int:
        return self._min

    @property
    def ndim(self) -> int | None:
        """Dimensionality, or None while the tree is empty."""
        return self._ndim

    @property
    def height(self) -> int:
        """Number of levels (1 for a single leaf root)."""
        return self._root.level + 1

    @property
    def root(self) -> Node:
        """The root node (read-only structural access for compilers).

        :class:`~repro.index.packed.PackedIndex` walks the node graph
        from here when flattening a built tree; mutating the returned
        structure voids the tree's invariants.
        """
        return self._root

    def __len__(self) -> int:
        return self._size

    def bounds(self) -> Box | None:
        """MBB of everything in the tree, or None when empty."""
        if self._size == 0:
            return None
        return self._root.bounds()

    # -- insertion ------------------------------------------------------------------

    def insert(self, box: Box, payload: Any) -> None:
        """Insert one (box, payload) pair."""
        self._check_dim(box, allow_set=True)
        entry = Entry(box, payload=payload)
        self._insert_entry(entry, target_level=0)
        self._size += 1

    def _check_dim(self, box: Box, *, allow_set: bool = False) -> None:
        if self._ndim is None:
            if not allow_set:
                raise IndexError_("operation on an empty tree")
            self._ndim = box.ndim
        elif box.ndim != self._ndim:
            raise IndexError_(
                f"box dimension {box.ndim} does not match tree dimension {self._ndim}"
            )

    def _insert_entry(self, entry: Entry, target_level: int) -> None:
        """Insert ``entry`` at ``target_level`` (0 = leaf)."""
        path = self._choose_path(entry.box, target_level)
        node = path[-1]
        node.add(entry)
        self._propagate_up(path)

    def _choose_path(self, box: Box, target_level: int) -> list[Node]:
        """Root-to-target path, choosing subtrees by least enlargement."""
        if target_level > self._root.level:
            raise IndexError_(
                f"target level {target_level} above root level {self._root.level}"
            )
        path = [self._root]
        node = self._root
        while node.level > target_level:
            best = self._choose_subtree(node, box)
            node = best.child  # type: ignore[assignment]
            assert node is not None
            path.append(node)
        return path

    def _choose_subtree(self, node: Node, box: Box) -> Entry:
        """Guttman ChooseLeaf step: least enlargement, ties by area."""
        best: Entry | None = None
        best_key: tuple[float, float] | None = None
        for entry in node.entries:
            key = (entry.box.enlargement(box), entry.box.volume)
            if best_key is None or key < best_key:
                best, best_key = entry, key
        assert best is not None
        return best

    def _propagate_up(self, path: list[Node]) -> None:
        """Fix boxes bottom-up, splitting overflowing nodes."""
        for depth in range(len(path) - 1, -1, -1):
            node = path[depth]
            if len(node.entries) > self._max:
                left, right = self._split_node(node)
                if depth == 0:
                    self._grow_root(left, right)
                else:
                    parent = path[depth - 1]
                    self._replace_child(parent, node, left, right)
            elif depth > 0:
                self._refresh_parent_box(path[depth - 1], node)

    def _grow_root(self, left: Node, right: Node) -> None:
        new_root = Node(level=left.level + 1)
        new_root.add(Entry(left.bounds(), child=left))
        new_root.add(Entry(right.bounds(), child=right))
        self._root = new_root

    def _replace_child(self, parent: Node, old: Node, left: Node, right: Node) -> None:
        for i, entry in enumerate(parent.entries):
            if entry.child is old:
                parent.entries[i] = Entry(left.bounds(), child=left)
                parent.add(Entry(right.bounds(), child=right))
                return
        raise IndexError_("split child not found in parent")

    def _refresh_parent_box(self, parent: Node, child: Node) -> None:
        for i, entry in enumerate(parent.entries):
            if entry.child is child:
                parent.entries[i] = Entry(child.bounds(), child=child)
                return
        raise IndexError_("child not found in parent")

    # -- splitting (quadratic) ---------------------------------------------------------

    def _split_node(self, node: Node) -> tuple[Node, Node]:
        """Quadratic split; subclasses override with better policies."""
        groups = self._quadratic_partition(node.entries)
        left = Node(node.level, groups[0])
        right = Node(node.level, groups[1])
        return left, right

    def _quadratic_partition(
        self, entries: list[Entry]
    ) -> tuple[list[Entry], list[Entry]]:
        remaining = list(entries)
        seed_a, seed_b = self._pick_seeds(remaining)
        group_a = [remaining.pop(max(seed_a, seed_b))]
        group_b = [remaining.pop(min(seed_a, seed_b))]
        box_a = group_a[0].box
        box_b = group_b[0].box
        while remaining:
            # Must one group absorb everything to stay above minimum fill?
            if len(group_a) + len(remaining) == self._min:
                group_a.extend(remaining)
                remaining.clear()
                break
            if len(group_b) + len(remaining) == self._min:
                group_b.extend(remaining)
                remaining.clear()
                break
            idx = self._pick_next(remaining, box_a, box_b)
            entry = remaining.pop(idx)
            grow_a = box_a.enlargement(entry.box)
            grow_b = box_b.enlargement(entry.box)
            choose_a = (
                grow_a < grow_b
                or (grow_a == grow_b and box_a.volume < box_b.volume)
                or (
                    grow_a == grow_b
                    and box_a.volume == box_b.volume
                    and len(group_a) <= len(group_b)
                )
            )
            if choose_a:
                group_a.append(entry)
                box_a = box_a.union(entry.box)
            else:
                group_b.append(entry)
                box_b = box_b.union(entry.box)
        return group_a, group_b

    @staticmethod
    def _pick_seeds(entries: list[Entry]) -> tuple[int, int]:
        """The pair wasting the most dead space if grouped together."""
        worst = -1.0
        pair = (0, 1)
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                combined = entries[i].box.union(entries[j].box).volume
                waste = combined - entries[i].box.volume - entries[j].box.volume
                if waste > worst:
                    worst = waste
                    pair = (i, j)
        return pair

    @staticmethod
    def _pick_next(remaining: list[Entry], box_a: Box, box_b: Box) -> int:
        """The entry with the strongest group preference."""
        best_idx = 0
        best_diff = -1.0
        for i, entry in enumerate(remaining):
            diff = abs(box_a.enlargement(entry.box) - box_b.enlargement(entry.box))
            if diff > best_diff:
                best_diff = diff
                best_idx = i
        return best_idx

    # -- queries -------------------------------------------------------------------------

    def search(self, box: Box) -> list[Any]:
        """Payloads of all entries whose boxes intersect ``box``."""
        return [entry.payload for entry in self.search_entries(box)]

    def search_entries(self, box: Box) -> list[Entry]:
        """Leaf entries intersecting ``box`` (counted in :attr:`stats`)."""
        if self._size == 0:
            self.stats.record_query()
            return []
        self._check_dim(box)
        self.stats.record_query()
        results: list[Entry] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.stats.record_node(is_leaf=node.is_leaf, entries=len(node.entries))
            for entry in node.entries:
                if not entry.box.intersects(box):
                    continue
                if node.is_leaf:
                    results.append(entry)
                else:
                    assert entry.child is not None
                    stack.append(entry.child)
        return results

    def count(self, box: Box) -> int:
        """Number of intersecting entries."""
        return len(self.search_entries(box))

    def all_payloads(self) -> Iterator[Any]:
        """Iterate every stored payload (no I/O accounting)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                if node.is_leaf:
                    yield entry.payload
                else:
                    assert entry.child is not None
                    stack.append(entry.child)

    # -- deletion -------------------------------------------------------------------------

    def delete(self, box: Box, payload: Any) -> bool:
        """Remove one entry matching ``payload`` whose box equals ``box``.

        Returns True when an entry was removed.  Underflowing nodes are
        condensed and their surviving entries reinserted at their
        original level, per Guttman's CondenseTree.
        """
        if self._size == 0:
            return False
        self._check_dim(box)
        path = self._find_leaf(self._root, box, payload, [])
        if path is None:
            return False
        leaf = path[-1]
        leaf.entries = [
            e for e in leaf.entries if not (e.payload == payload and e.box == box)
        ]
        self._size -= 1
        self._condense(path)
        # Shrink the root when it has a single child.
        while not self._root.is_leaf and len(self._root.entries) == 1:
            child = self._root.entries[0].child
            assert child is not None
            self._root = child
        if self._size == 0:
            self._root = Node(level=0)
            self._ndim = None
        return True

    def _find_leaf(
        self, node: Node, box: Box, payload: Any, path: list[Node]
    ) -> list[Node] | None:
        path = path + [node]
        if node.is_leaf:
            for entry in node.entries:
                if entry.payload == payload and entry.box == box:
                    return path
            return None
        for entry in node.entries:
            if entry.box.contains_box(box):
                assert entry.child is not None
                found = self._find_leaf(entry.child, box, payload, path)
                if found is not None:
                    return found
        return None

    def _condense(self, path: list[Node]) -> None:
        orphans: list[tuple[int, Entry]] = []
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            parent = path[depth - 1]
            if len(node.entries) < self._min:
                parent.entries = [e for e in parent.entries if e.child is not node]
                orphans.extend((node.level, e) for e in node.entries)
            else:
                self._refresh_parent_box(parent, node)
        for level, entry in orphans:
            if self._root.level < level:
                # The tree shrank below the orphan's level; flatten it.
                for leaf_entry in self._collect_leaf_entries(entry):
                    self._insert_entry(leaf_entry, target_level=0)
            else:
                self._insert_entry(entry, target_level=level)

    def _collect_leaf_entries(self, entry: Entry) -> list[Entry]:
        if entry.is_leaf_entry:
            return [entry]
        out: list[Entry] = []
        stack = [entry.child]
        while stack:
            node = stack.pop()
            assert node is not None
            for e in node.entries:
                if node.is_leaf:
                    out.append(e)
                else:
                    stack.append(e.child)
        return out

    # -- invariants (used by tests) -----------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raises IndexError_ on violation."""
        if self._size == 0:
            return
        leaf_levels: set[int] = set()
        count = self._validate_node(self._root, is_root=True, leaf_levels=leaf_levels)
        if count != self._size:
            raise IndexError_(f"size mismatch: counted {count}, recorded {self._size}")
        if leaf_levels and leaf_levels != {0}:
            raise IndexError_(f"leaves at non-zero levels: {leaf_levels}")

    def _validate_node(self, node: Node, *, is_root: bool, leaf_levels: set[int]) -> int:
        if not is_root and not self._min <= len(node.entries) <= self._max:
            raise IndexError_(
                f"node fill {len(node.entries)} outside [{self._min}, {self._max}]"
            )
        if is_root and len(node.entries) > self._max:
            raise IndexError_(f"root overflow: {len(node.entries)} entries")
        if node.is_leaf:
            leaf_levels.add(node.level)
            return len(node.entries)
        total = 0
        for entry in node.entries:
            child = entry.child
            if child is None:
                raise IndexError_("internal node holds a payload entry")
            if child.level != node.level - 1:
                raise IndexError_(
                    f"child level {child.level} under node level {node.level}"
                )
            if entry.box != child.bounds():
                raise IndexError_("stale bounding box in internal entry")
            total += self._validate_node(child, is_root=False, leaf_levels=leaf_levels)
        return total

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(size={self._size}, height={self.height}, "
            f"M={self._max}, m={self._min})"
        )
