"""Spatial indexing: R-tree, R*-tree, bulk loading, access methods."""

from repro.index.access import (
    AccessResult,
    MotionAwareAccessMethod,
    NaivePointAccessMethod,
)
from repro.index.bulk import bulk_load, str_pack
from repro.index.columnar import PAGE_BYTES, ColumnarAccessMethod, RowResult
from repro.index.dynamic import (
    DynamicAccessMethod,
    DynamicPackedIndex,
    EpochView,
    GridSpec,
)
from repro.index.hilbert import hilbert_bulk_load, hilbert_index
from repro.index.node import Entry, Node
from repro.index.packed import (
    PackedAccessMethod,
    PackedCandidates,
    PackedIndex,
    PackedLevel,
)
from repro.index.rstar import RStarTree
from repro.index.rtree import DEFAULT_NODE_CAPACITY, RTree
from repro.index.stats import IOStats

__all__ = [
    "Entry",
    "Node",
    "RTree",
    "RStarTree",
    "DEFAULT_NODE_CAPACITY",
    "IOStats",
    "bulk_load",
    "str_pack",
    "hilbert_bulk_load",
    "hilbert_index",
    "AccessResult",
    "NaivePointAccessMethod",
    "MotionAwareAccessMethod",
    "ColumnarAccessMethod",
    "RowResult",
    "PAGE_BYTES",
    "PackedIndex",
    "PackedLevel",
    "PackedCandidates",
    "PackedAccessMethod",
    "DynamicPackedIndex",
    "DynamicAccessMethod",
    "EpochView",
    "GridSpec",
]
