"""I/O accounting for the spatial indexes.

The paper reports index performance as I/O cost; following its setup
(Section VII-D: 4 KB pages, node capacity 20) we equate one node access
with one page read.  :class:`IOStats` is a simple mutable counter the
trees update on every node touch during a query; experiments snapshot
and difference it around each operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IndexError_

__all__ = ["IOStats"]


@dataclass
class IOStats:
    """Counters of index work.

    Attributes
    ----------
    node_reads:
        Nodes touched by queries (the paper's I/O cost unit).
    leaf_reads:
        The subset of ``node_reads`` that were leaves.
    entries_scanned:
        Entries compared against a query box.
    queries:
        Number of window queries executed.
    """

    node_reads: int = 0
    leaf_reads: int = 0
    entries_scanned: int = 0
    queries: int = 0
    _checkpoints: list[tuple[int, int, int, int]] = field(
        default_factory=list, repr=False
    )

    def record_node(self, *, is_leaf: bool, entries: int) -> None:
        """Count one node access during a query."""
        self.node_reads += 1
        if is_leaf:
            self.leaf_reads += 1
        self.entries_scanned += entries

    def record_level(self, *, nodes: int, entries: int, is_leaf: bool) -> None:
        """Count one whole frontier level in a packed traversal.

        Equivalent to ``nodes`` calls of :meth:`record_node` scanning
        ``entries`` entries in total, so a vectorised per-level walk
        bills exactly what the node-by-node walk would.
        """
        if nodes < 0 or entries < 0:
            raise IndexError_(
                f"negative level accounting: nodes={nodes}, entries={entries}"
            )
        self.node_reads += nodes
        if is_leaf:
            self.leaf_reads += nodes
        self.entries_scanned += entries

    def record_query(self) -> None:
        """Count one window query."""
        self.queries += 1

    def snapshot(self) -> tuple[int, int, int, int]:
        """Current counter values (node, leaf, entries, queries)."""
        return (self.node_reads, self.leaf_reads, self.entries_scanned, self.queries)

    def push(self) -> None:
        """Remember the current counters for a later :meth:`pop_delta`."""
        self._checkpoints.append(self.snapshot())

    def pop_delta(self) -> "IOStats":
        """Counters accumulated since the matching :meth:`push`."""
        if not self._checkpoints:
            raise IndexError_("pop_delta without matching push")
        base = self._checkpoints.pop()
        now = self.snapshot()
        return IOStats(
            node_reads=now[0] - base[0],
            leaf_reads=now[1] - base[1],
            entries_scanned=now[2] - base[2],
            queries=now[3] - base[3],
        )

    def reset(self) -> None:
        """Zero every counter and drop checkpoints."""
        self.node_reads = 0
        self.leaf_reads = 0
        self.entries_scanned = 0
        self.queries = 0
        self._checkpoints.clear()

    def merged(self, other: "IOStats") -> "IOStats":
        """A new stats object with both sets of counters summed."""
        return IOStats(
            node_reads=self.node_reads + other.node_reads,
            leaf_reads=self.leaf_reads + other.leaf_reads,
            entries_scanned=self.entries_scanned + other.entries_scanned,
            queries=self.queries + other.queries,
        )
