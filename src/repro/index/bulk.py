"""Sort-Tile-Recursive (STR) bulk loading.

Building an index entry-by-entry is the dynamic path; experiments build
indexes over hundreds of thousands of coefficients, where STR packing
(Leutenegger et al.) is dramatically faster and produces better-packed
nodes.  The loader fills leaves to capacity by recursively tiling the
entries along each axis, then builds upper levels the same way.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Sequence

from repro.errors import IndexError_
from repro.geometry.box import Box
from repro.index.node import Entry, Node
from repro.index.rstar import RStarTree
from repro.index.rtree import DEFAULT_NODE_CAPACITY, RTree
from repro.index.stats import IOStats

__all__ = ["str_pack", "bulk_load"]


def _tile(entries: list[Entry], capacity: int, ndim: int) -> list[list[Entry]]:
    """Group entries into runs of <= capacity with good spatial locality."""
    if len(entries) <= capacity:
        return [entries]
    groups = [entries]
    for axis in range(ndim):
        if axis == ndim - 1:
            break
        new_groups: list[list[Entry]] = []
        for group in groups:
            leaf_pages = math.ceil(len(group) / capacity)
            # Number of vertical slabs along this axis (STR formula).
            remaining_axes = ndim - axis
            slabs = max(1, math.ceil(leaf_pages ** (1.0 / remaining_axes)))
            slab_size = math.ceil(len(group) / slabs)
            ordered = sorted(group, key=lambda e, a=axis: float(e.box.center[a]))
            for start in range(0, len(ordered), slab_size):
                new_groups.append(ordered[start : start + slab_size])
        groups = new_groups
    # Final axis: cut each slab into capacity-sized runs.
    final: list[list[Entry]] = []
    last_axis = ndim - 1
    for group in groups:
        ordered = sorted(group, key=lambda e: float(e.box.center[last_axis]))
        for start in range(0, len(ordered), capacity):
            final.append(ordered[start : start + capacity])
    return final


def str_pack(
    items: Sequence[tuple[Box, Any]],
    max_entries: int = DEFAULT_NODE_CAPACITY,
) -> Node:
    """Pack (box, payload) pairs into a complete R-tree and return its root."""
    if not items:
        raise IndexError_("cannot bulk load zero items")
    ndim = items[0][0].ndim
    for box, _ in items:
        if box.ndim != ndim:
            raise IndexError_("mixed dimensions in bulk load input")
    level_entries: list[Entry] = [Entry(box, payload=payload) for box, payload in items]
    level = 0
    nodes = [Node(level, group) for group in _tile(level_entries, max_entries, ndim)]
    while len(nodes) > 1:
        level += 1
        upper_entries = [Entry(n.bounds(), child=n) for n in nodes]
        nodes = [Node(level, group) for group in _tile(upper_entries, max_entries, ndim)]
    return nodes[0]


def bulk_load(
    items: Sequence[tuple[Box, Any]],
    *,
    max_entries: int = DEFAULT_NODE_CAPACITY,
    min_entries: int | None = None,
    tree_class: Callable[..., RTree] = RStarTree,
    stats: IOStats | None = None,
) -> RTree:
    """Build a query-ready tree from (box, payload) pairs via STR packing.

    The resulting tree supports the full dynamic API (insert/delete)
    afterwards.  Note STR leaves may be filled below ``min_entries`` at
    the tail; :meth:`validate` is therefore not guaranteed to pass on a
    bulk-loaded tree until enough dynamic inserts rebalance it -- the
    experiments only query them.
    """
    tree = tree_class(max_entries, min_entries, stats=stats)
    if not items:
        return tree
    root = str_pack(items, max_entries)
    tree._root = root
    tree._size = len(items)
    tree._ndim = items[0][0].ndim
    return tree
