"""Packed array-backed index traversal.

The object trees of :mod:`repro.index.rtree` answer a window query by
walking ``Node``/``Entry`` Python objects one entry at a time; at the
paper's database sizes that traversal is the server's hot path.  This
module compiles any *built* tree (Guttman :class:`~repro.index.rtree.RTree`,
:class:`~repro.index.rstar.RStarTree`, STR or Hilbert bulk loads) into a
:class:`PackedIndex`: level-ordered numpy arrays of entry bounds, child
ranges, and leaf payload rows.  A query then runs one vectorised
frontier intersection per level instead of one Python call per entry.

Layout.  Nodes of each level are numbered in the order their parent
entries appear, so the entry at slot ``i`` of level ``L`` *is* the
parent of node ``i`` at level ``L+1`` -- no explicit child pointers are
needed.  Per level the index stores::

    low, high    (E, ndim) float64   entry bounding boxes
    node_start   (N + 1,)  int64     entries of node i live in
                                     [node_start[i], node_start[i+1])

and, at the leaf level only, ``rows`` -- an ``int64`` array mapping leaf
entry slots to payload row ids (store rows for the access method below,
or positions in the compiled payload list for generic trees).

Accounting parity.  The frontier walk visits exactly the nodes the
object walk visits (a node is expanded iff its parent entry intersects
the query), and bills them through the same :class:`IOStats` counters
via :meth:`IOStats.record_level`, so node accesses, leaf reads, entries
scanned, and query counts are *identical* to
:meth:`RTree.search_entries` -- the paper-figure I/O numbers
(``bench_fig12/13``) are unchanged, only the wall-clock cost drops.

:class:`PackedAccessMethod` builds the paper's support-MBB x value
R*-tree over a :class:`~repro.store.columns.CoefficientStore` (same
boxes, same STR packing, hence the same tree shape as
:class:`~repro.index.access.MotionAwareAccessMethod`), compiles it, and
answers ``Q(R, w_min, w_max)`` as store row ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import IndexError_
from repro.geometry.box import Box
from repro.index.access import AccessResult, _spatial_query_box
from repro.index.bulk import bulk_load
from repro.index.columnar import RowResult
from repro.index.node import Node
from repro.index.rstar import RStarTree
from repro.index.rtree import DEFAULT_NODE_CAPACITY, RTree
from repro.index.stats import IOStats
from repro.store.columns import CoefficientStore

__all__ = [
    "PackedLevel",
    "PackedCandidates",
    "PackedIndex",
    "PackedAccessMethod",
    "query_corner_box",
    "subquery_corners",
    "corners_query_batch",
]


def query_corner_box(
    region: Box, w_min: float, w_max: float, spatial_dims: int
) -> Box:
    """The full index-space box of ``Q(region, w_min, w_max)``."""
    if not 0.0 <= w_min <= w_max <= 1.0:
        raise IndexError_(
            f"invalid value band [{w_min}, {w_max}]; need 0 <= min <= max <= 1"
        )
    spatial = _spatial_query_box(region, spatial_dims)
    return spatial.augment([w_min], [w_max])


def subquery_corners(
    subqueries: Sequence[tuple[Box, float, float]], spatial_dims: int
) -> tuple[np.ndarray, np.ndarray]:
    """Lower ``(region, w_min, w_max)`` sub-queries to corner stacks.

    Returns the ``(Q, spatial_dims + 1)`` query-box corner matrices
    :meth:`PackedIndex.query_slots_many` consumes -- the same boxes
    :meth:`PackedAccessMethod.query_box` builds per sub-query, with the
    same band validation.  This is the shared lowering step the serial
    executor, the shared-memory workers, and the whole-fleet planner
    all run, so every path queries bit-identical corners.
    """
    boxes = [
        query_corner_box(region, w_min, w_max, spatial_dims)
        for region, w_min, w_max in subqueries
    ]
    if not boxes:
        empty = np.empty((0, spatial_dims + 1), dtype=np.float64)
        return empty, empty.copy()
    return (
        np.vstack([box.low for box in boxes]),
        np.vstack([box.high for box in boxes]),
    )


def corners_query_batch(
    packed: "PackedIndex", qlow: np.ndarray, qhigh: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compact batch answer over pre-lowered corners: ``(rows, counts, io)``.

    The single source of truth behind
    :meth:`PackedAccessMethod.query_batch` and the shared-memory shard
    workers: one shared frontier walk, rows grouped by ascending
    sub-query index, ``(Q, 3)`` per-sub-query I/O.  Running the same
    function on the same arrays is what makes the executors
    bit-identical by construction.
    """
    slots, slot_qid, io = packed.query_slots_many(qlow, qhigh)
    counts = np.bincount(slot_qid, minlength=int(qlow.shape[0])).astype(
        np.int64
    )
    return packed.rows[slots], counts, io


@dataclass(frozen=True)
class PackedLevel:
    """One level of a packed tree: entry boxes plus node extents."""

    low: np.ndarray  # (E, ndim) entry box lower corners
    high: np.ndarray  # (E, ndim) entry box upper corners
    node_start: np.ndarray  # (N + 1,) entry offsets per node

    @property
    def node_count(self) -> int:
        return int(self.node_start.size - 1)

    @property
    def entry_count(self) -> int:
        return int(self.low.shape[0])


@dataclass(frozen=True)
class PackedCandidates:
    """Leaf-level survivors of one frontier traversal.

    The incremental planner memoises these per client: ``rows`` answer
    the traversed box directly, while ``low``/``high``/``leaf_nodes``
    let later, *contained* queries be answered by one vectorised
    re-test of the candidates instead of a root traversal.
    """

    rows: np.ndarray  # (k,) payload row ids
    low: np.ndarray  # (k, ndim) candidate entry boxes
    high: np.ndarray  # (k, ndim)
    leaf_nodes: np.ndarray  # (k,) leaf node id of each candidate

    def __len__(self) -> int:
        return int(self.rows.size)


def _expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``[starts[i], starts[i] + counts[i])`` ranges."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    shift = np.cumsum(counts) - counts
    return np.repeat(starts - shift, counts) + np.arange(total, dtype=np.int64)


class PackedIndex:
    """A flat, immutable compilation of a built R-tree family tree.

    Construct via :meth:`from_tree`.  Queries return leaf payload rows
    (:meth:`query_rows`) or the payload objects themselves
    (:meth:`search`, result-set-identical to :meth:`RTree.search`).
    The packed form is read-only; dynamic insert/delete workloads keep
    using the object tree and recompile when they need packed speed.
    """

    __slots__ = ("_levels", "_rows", "_payloads", "_ndim", "_size", "stats")

    def __init__(
        self,
        levels: Sequence[PackedLevel],
        rows: np.ndarray,
        payloads: Sequence[Any],
        *,
        ndim: int | None,
        stats: IOStats | None = None,
    ) -> None:
        self._levels = tuple(levels)
        self._rows = np.asarray(rows, dtype=np.int64)
        self._payloads = tuple(payloads)
        self._ndim = ndim
        self._size = int(self._rows.size)
        if self._levels and self._levels[-1].entry_count != self._size:
            raise IndexError_(
                f"leaf level holds {self._levels[-1].entry_count} entries "
                f"but {self._size} rows were supplied"
            )
        self.stats = stats if stats is not None else IOStats()

    # -- compilation ---------------------------------------------------------

    @classmethod
    def from_tree(
        cls,
        tree: RTree,
        *,
        leaf_row: Callable[[Any], int] | None = None,
        stats: IOStats | None = None,
    ) -> "PackedIndex":
        """Flatten a built tree into level-ordered arrays.

        ``leaf_row`` maps each leaf payload to its row id; by default
        rows are the positions in the compiled payload sequence (level
        order), which is what :meth:`search` uses to return payloads.
        """
        if len(tree) == 0:
            return cls((), np.empty(0, dtype=np.int64), (), ndim=None, stats=stats)
        levels: list[PackedLevel] = []
        payloads: list[Any] = []
        nodes: list[Node] = [tree.root]
        while True:
            children: list[Node] = []
            node_start = np.zeros(len(nodes) + 1, dtype=np.int64)
            low_rows: list[np.ndarray] = []
            high_rows: list[np.ndarray] = []
            is_leaf = nodes[0].is_leaf
            for i, node in enumerate(nodes):
                if node.is_leaf != is_leaf:
                    raise IndexError_("mixed leaf/internal nodes in one level")
                node_start[i + 1] = node_start[i] + len(node.entries)
                for entry in node.entries:
                    low_rows.append(entry.box.low)
                    high_rows.append(entry.box.high)
                    if is_leaf:
                        payloads.append(entry.payload)
                    else:
                        assert entry.child is not None
                        children.append(entry.child)
            low = np.ascontiguousarray(np.vstack(low_rows))
            high = np.ascontiguousarray(np.vstack(high_rows))
            low.setflags(write=False)
            high.setflags(write=False)
            node_start.setflags(write=False)
            levels.append(PackedLevel(low=low, high=high, node_start=node_start))
            if is_leaf:
                break
            nodes = children
        if leaf_row is None:
            rows = np.arange(len(payloads), dtype=np.int64)
        else:
            rows = np.fromiter(
                (leaf_row(p) for p in payloads), dtype=np.int64, count=len(payloads)
            )
        rows.setflags(write=False)
        return cls(levels, rows, payloads, ndim=tree.ndim, stats=stats)

    # -- accessors -----------------------------------------------------------

    @property
    def ndim(self) -> int | None:
        """Dimensionality, or None for an empty compilation."""
        return self._ndim

    @property
    def height(self) -> int:
        """Number of levels (0 when empty)."""
        return len(self._levels)

    @property
    def node_count(self) -> int:
        return sum(level.node_count for level in self._levels)

    @property
    def levels(self) -> tuple[PackedLevel, ...]:
        return self._levels

    @property
    def rows(self) -> np.ndarray:
        """Leaf-slot -> payload row mapping (level order)."""
        return self._rows

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        return (
            f"PackedIndex(size={self._size}, height={self.height}, "
            f"nodes={self.node_count})"
        )

    # -- queries -------------------------------------------------------------

    def _check_query(self, box: Box) -> None:
        if self._ndim is not None and box.ndim != self._ndim:
            raise IndexError_(
                f"box dimension {box.ndim} does not match index "
                f"dimension {self._ndim}"
            )

    def _descend(self, box: Box) -> np.ndarray:
        """Leaf entry slots intersecting ``box`` (bills node accesses)."""
        qlow = box.low
        qhigh = box.high
        frontier = np.zeros(1, dtype=np.int64)
        last = len(self._levels) - 1
        for depth, level in enumerate(self._levels):
            starts = level.node_start[frontier]
            counts = level.node_start[frontier + 1] - starts
            self.stats.record_level(
                nodes=int(frontier.size),
                entries=int(counts.sum()),
                is_leaf=depth == last,
            )
            slots = _expand_ranges(starts, counts)
            low = level.low[slots]
            high = level.high[slots]
            hit = slots[
                np.all((low <= qhigh) & (high >= qlow), axis=1)
            ]
            if depth == last or hit.size == 0:
                return hit if depth == last else np.empty(0, dtype=np.int64)
            # Entry slot i at this level parents node i one level down.
            frontier = hit
        return np.empty(0, dtype=np.int64)

    def query_slots(self, box: Box) -> np.ndarray:
        """Leaf entry slots whose boxes intersect ``box``."""
        self.stats.record_query()
        if not self._levels:
            return np.empty(0, dtype=np.int64)
        self._check_query(box)
        return self._descend(box)

    def query_slots_many(
        self, qlow: np.ndarray, qhigh: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One shared frontier walk answering many queries at once.

        ``qlow``/``qhigh`` are ``(Q, ndim)`` stacked query-box corners.
        Returns ``(slots, slot_qid, io)``: the surviving leaf entry
        slots, the query index each slot answers (grouped by ascending
        query index, slots ascending within a query -- exactly the
        order :meth:`query_slots` yields per query), and a ``(Q, 3)``
        int64 matrix of per-query ``(node_reads, leaf_reads,
        entries_scanned)``.

        Per query the walk visits exactly the nodes a solo
        :meth:`query_slots` call would (a node is expanded iff its
        parent entry intersects *that* query), and the per-query
        accounting matches it; the aggregate is billed to
        :attr:`stats` as ``Q`` queries.  Sharing the per-level numpy
        work across queries is what makes a scatter batch cheap: the
        fixed per-level call overhead is paid once for the whole batch
        instead of once per query.
        """
        qlow = np.asarray(qlow, dtype=np.float64)
        qhigh = np.asarray(qhigh, dtype=np.float64)
        if qlow.shape != qhigh.shape or qlow.ndim != 2:
            raise IndexError_(
                f"query corners must be matching (Q, ndim) stacks, got "
                f"{qlow.shape} and {qhigh.shape}"
            )
        nq = int(qlow.shape[0])
        io = np.zeros((nq, 3), dtype=np.int64)
        self.stats.queries += nq
        empty = np.empty(0, dtype=np.int64)
        if nq == 0 or not self._levels:
            return empty, empty, io
        if self._ndim is not None and qlow.shape[1] != self._ndim:
            raise IndexError_(
                f"box dimension {qlow.shape[1]} does not match index "
                f"dimension {self._ndim}"
            )
        # The frontier is a (node, query) pair list kept sorted by
        # (query, node); root node 0 seeds every query.
        frontier = np.zeros(nq, dtype=np.int64)
        qid = np.arange(nq, dtype=np.int64)
        last = len(self._levels) - 1
        for depth, level in enumerate(self._levels):
            starts = level.node_start[frontier]
            counts = level.node_start[frontier + 1] - starts
            nodes_per_q = np.bincount(qid, minlength=nq)
            entries_per_q = np.bincount(qid, weights=counts, minlength=nq)
            io[:, 0] += nodes_per_q
            if depth == last:
                io[:, 1] += nodes_per_q
            io[:, 2] += entries_per_q.astype(np.int64)
            self.stats.record_level(
                nodes=int(frontier.size),
                entries=int(counts.sum()),
                is_leaf=depth == last,
            )
            slots = _expand_ranges(starts, counts)
            slot_qid = np.repeat(qid, counts)
            low = level.low[slots]
            high = level.high[slots]
            hit = np.all(
                (low <= qhigh[slot_qid]) & (high >= qlow[slot_qid]), axis=1
            )
            slots = slots[hit]
            slot_qid = slot_qid[hit]
            if depth == last:
                return slots, slot_qid, io
            if slots.size == 0:
                return empty, empty, io
            frontier = slots
            qid = slot_qid
        return empty, empty, io

    def query_rows(self, box: Box) -> np.ndarray:
        """Payload row ids whose boxes intersect ``box``."""
        return self._rows[self.query_slots(box)]

    def search(self, box: Box) -> list[Any]:
        """Payload objects intersecting ``box``.

        The result *set* matches :meth:`RTree.search` on the source
        tree exactly; the order is level order rather than the object
        walk's stack order.
        """
        return [self._payloads[int(slot)] for slot in self.query_slots(box)]

    def count(self, box: Box) -> int:
        """Number of intersecting entries."""
        return int(self.query_slots(box).size)

    def candidates(self, box: Box) -> PackedCandidates:
        """Traverse for ``box`` and keep the surviving leaf entries.

        Same accounting as :meth:`query_rows`; additionally returns the
        candidates' boxes and owning leaf nodes so a caller can answer
        any query *contained* in ``box`` by re-testing them.
        """
        slots = self.query_slots(box)
        if not self._levels:
            empty = np.empty(0, dtype=np.int64)
            return PackedCandidates(
                rows=empty,
                low=np.empty((0, 0)),
                high=np.empty((0, 0)),
                leaf_nodes=empty,
            )
        leaf = self._levels[-1]
        leaf_nodes = (
            np.searchsorted(leaf.node_start, slots, side="right") - 1
        ).astype(np.int64)
        return PackedCandidates(
            rows=self._rows[slots],
            low=leaf.low[slots],
            high=leaf.high[slots],
            leaf_nodes=leaf_nodes,
        )


class PackedAccessMethod:
    """Support-MBB x value index compiled to packed arrays (Section VI-B).

    Builds the same STR-packed R*-tree as
    :class:`~repro.index.access.MotionAwareAccessMethod` -- identical
    entry boxes in identical input order, hence an identical tree shape
    and identical per-query node accesses -- then compiles it once and
    answers every query with the vectorised frontier walk, returning
    row ids into ``store``.

    Parameters
    ----------
    store:
        The database-level columnar store the leaf rows index into.
    spatial_dims:
        2 for the paper's ``(x, y, w)`` index, 3 for ``(x, y, z, w)``.
    max_entries / tree_class:
        Construction parameters of the compiled tree.
    """

    def __init__(
        self,
        store: CoefficientStore,
        *,
        spatial_dims: int = 2,
        max_entries: int = DEFAULT_NODE_CAPACITY,
        tree_class: Callable[..., RTree] = RStarTree,
    ) -> None:
        if spatial_dims not in (2, 3):
            raise IndexError_(f"spatial_dims must be 2 or 3, got {spatial_dims}")
        if len(store) == 0:
            raise IndexError_("cannot index an empty store")
        self._store = store
        self._spatial_dims = spatial_dims
        self.stats = IOStats()
        low = np.concatenate(
            [store.support_low[:, :spatial_dims], store.values[:, None]], axis=1
        )
        high = np.concatenate(
            [store.support_high[:, :spatial_dims], store.values[:, None]], axis=1
        )
        items = [
            (Box(low[i], high[i]), int(i)) for i in range(len(store))
        ]
        self._tree = bulk_load(items, max_entries=max_entries, tree_class=tree_class)
        self._packed = PackedIndex.from_tree(
            self._tree, leaf_row=_row_payload, stats=self.stats
        )

    # -- accessors -----------------------------------------------------------

    @property
    def store(self) -> CoefficientStore:
        return self._store

    @property
    def spatial_dims(self) -> int:
        return self._spatial_dims

    @property
    def tree(self) -> RTree:
        """The source object tree (kept for dynamic workloads and tests)."""
        return self._tree

    @property
    def packed(self) -> PackedIndex:
        return self._packed

    def __len__(self) -> int:
        return len(self._store)

    # -- queries -------------------------------------------------------------

    def query_box(self, region: Box, w_min: float, w_max: float) -> Box:
        """The full index-space box of ``Q(region, w_min, w_max)``."""
        return query_corner_box(region, w_min, w_max, self._spatial_dims)

    def query_rows(
        self,
        region: Box,
        w_min: float,
        w_max: float,
        *,
        half_open: bool = False,
    ) -> RowResult:
        """One frontier walk: store rows answering the query."""
        box = self.query_box(region, w_min, w_max)
        self.stats.push()
        rows = self._packed.query_rows(box)
        io = self.stats.pop_delta()
        if half_open and rows.size:
            rows = rows[self._store.values[rows] < w_max]
        return RowResult(rows=rows, io=io)

    def query_batch(
        self, subqueries: Sequence[tuple[Box, float, float]]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Compact batch answer: ``(rows, counts, io)``.

        ``rows`` concatenates every sub-query's store rows grouped by
        ascending sub-query index (sub-query ``q`` owns the slice of
        length ``counts[q]``); ``io`` is the ``(Q, 3)`` per-sub-query
        ``(node_reads, leaf_reads, entries_scanned)`` matrix.  This is
        the scatter-gather currency: three flat arrays, no per-query
        Python objects, cheap to ship across a process boundary.
        """
        if not subqueries:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, np.zeros((0, 3), dtype=np.int64)
        qlow, qhigh = subquery_corners(subqueries, self._spatial_dims)
        return corners_query_batch(self._packed, qlow, qhigh)

    def query_rows_many(
        self, subqueries: Sequence[tuple[Box, float, float]]
    ) -> list[RowResult]:
        """Answer a batch of ``(region, w_min, w_max)`` sub-queries.

        One shared frontier walk (:meth:`PackedIndex.query_slots_many`)
        answers the whole batch; per sub-query the returned rows and
        :class:`~repro.index.stats.IOStats` are identical to a serial
        loop of :meth:`query_rows` calls -- only the numpy call
        overhead is amortised across the batch.
        """
        rows, counts, io = self.query_batch(subqueries)
        bounds = np.concatenate([[0], np.cumsum(counts)])
        out: list[RowResult] = []
        for q in range(len(subqueries)):
            stats = IOStats(
                node_reads=int(io[q, 0]),
                leaf_reads=int(io[q, 1]),
                entries_scanned=int(io[q, 2]),
                queries=1,
            )
            out.append(
                RowResult(rows=rows[bounds[q] : bounds[q + 1]], io=stats)
            )
        return out

    def query(self, region: Box, w_min: float, w_max: float) -> AccessResult:
        """Tree-compatible query surface (materialises record views)."""
        result = self.query_rows(region, w_min, w_max)
        records = list(self._store.records(result.rows))
        return AccessResult(
            records=records,
            io=result.io,
            retrieved_with_duplicates=len(records),
        )

    def candidates(self, box: Box) -> PackedCandidates:
        """Raw-box traversal keeping survivors (the planner's refresh)."""
        self.stats.push()
        cand = self._packed.candidates(box)
        self.stats.pop_delta()
        return cand


def _row_payload(payload: Any) -> int:
    """Leaf payloads of the access method's tree are the rows themselves."""
    return int(payload)
