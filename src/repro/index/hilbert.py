"""Hilbert-curve bulk loading (alternative to STR packing).

Packs entries in the order of their centre points along a Hilbert
space-filling curve, then fills nodes sequentially.  Included as an
ablation target: Hilbert packing preserves locality differently from
STR tiling, and the benchmark suite compares their query I/O.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import IndexError_
from repro.geometry.box import Box, union_bounds
from repro.index.node import Entry, Node
from repro.index.rstar import RStarTree
from repro.index.rtree import DEFAULT_NODE_CAPACITY, RTree
from repro.index.stats import IOStats

__all__ = ["hilbert_index", "hilbert_bulk_load"]


def hilbert_index(x: int, y: int, order: int) -> int:
    """Distance along a Hilbert curve of ``2**order x 2**order`` cells.

    Classic Lam-Shapiro iteration: repeatedly fold quadrants while
    accumulating the curve distance.
    """
    if order <= 0:
        raise IndexError_(f"order must be positive, got {order}")
    side = 1 << order
    if not (0 <= x < side and 0 <= y < side):
        raise IndexError_(f"({x}, {y}) outside the order-{order} grid")
    rx = ry = 0
    d = 0
    s = side >> 1
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        # Rotate the quadrant.
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s >>= 1
    return d


def _hilbert_keys(
    boxes: Sequence[Box], order: int
) -> np.ndarray:
    bounds = union_bounds(boxes)
    extent = np.maximum(bounds.extents, 1e-12)
    side = 1 << order
    keys = np.empty(len(boxes), dtype=np.int64)
    for i, box in enumerate(boxes):
        rel = (box.center[:2] - bounds.low[:2]) / extent[:2]
        cx = min(int(rel[0] * side), side - 1)
        cy = min(int(rel[1] * side), side - 1)
        keys[i] = hilbert_index(cx, cy, order)
    return keys


def hilbert_bulk_load(
    items: Sequence[tuple[Box, Any]],
    *,
    max_entries: int = DEFAULT_NODE_CAPACITY,
    order: int = 10,
    tree_class: Callable[..., RTree] = RStarTree,
    stats: IOStats | None = None,
) -> RTree:
    """Build a tree by packing entries in Hilbert order of their centres.

    Uses the first two dimensions for the curve (the spatial plane);
    higher dimensions ride along, which is the standard practical
    treatment for the (x, y, w) coefficient indexes.
    """
    tree = tree_class(max_entries, stats=stats)
    if not items:
        return tree
    boxes = [box for box, _ in items]
    ndim = boxes[0].ndim
    if ndim < 2:
        raise IndexError_("hilbert packing needs at least 2 dimensions")
    for box in boxes:
        if box.ndim != ndim:
            raise IndexError_("mixed dimensions in bulk load input")
    keys = _hilbert_keys(boxes, order)
    ordered = [items[i] for i in np.argsort(keys, kind="stable")]

    nodes = []
    for start in range(0, len(ordered), max_entries):
        chunk = ordered[start : start + max_entries]
        nodes.append(
            Node(0, [Entry(box, payload=payload) for box, payload in chunk])
        )
    level = 0
    while len(nodes) > 1:
        level += 1
        upper = []
        for start in range(0, len(nodes), max_entries):
            chunk = nodes[start : start + max_entries]
            upper.append(
                Node(level, [Entry(n.bounds(), child=n) for n in chunk])
            )
        nodes = upper
    tree._root = nodes[0]
    tree._size = len(items)
    tree._ndim = ndim
    return tree
