"""Columnar access method: vectorised batch filtering over the store.

The tree access methods of :mod:`repro.index.access` answer one query
with a Python node-by-node traversal and return record *objects*.  The
columnar method answers the same multi-resolution window query
``Q(R, w_min, w_max)`` with one vectorised predicate over the
:class:`~repro.store.columns.CoefficientStore` columns and returns
*row-id arrays* -- the shape the refactored server, buffer, and wire
layers consume directly.

Result sets are identical to :class:`MotionAwareAccessMethod` (both
implement support-MBB x value intersection), so the two are
interchangeable for correctness; they differ only in cost model.  I/O is
accounted with a deterministic paged layout: rows live in store order on
4 KB pages, one query reads each page holding at least one match plus
one directory page -- mirroring how a real columnar segment scan would
bill page reads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import IndexError_
from repro.geometry.box import Box
from repro.index.access import AccessResult
from repro.index.stats import IOStats
from repro.store.columns import CoefficientStore

__all__ = ["RowResult", "ColumnarAccessMethod", "PAGE_BYTES"]

#: Page size of the simulated columnar layout (the paper's 4 KB pages).
PAGE_BYTES = 4096


@dataclass(frozen=True)
class RowResult:
    """Outcome of one batch row query: row ids plus the I/O spent."""

    rows: np.ndarray
    io: IOStats


class ColumnarAccessMethod:
    """Batch ``(box, w-band)`` filter over a coefficient store.

    Parameters
    ----------
    store:
        The database-level columnar store.
    spatial_dims:
        2 for the paper's ``(x, y, w)`` form, 3 for ``(x, y, z, w)``.
    """

    def __init__(self, store: CoefficientStore, *, spatial_dims: int = 2) -> None:
        if spatial_dims not in (2, 3):
            raise IndexError_(
                f"spatial_dims must be 2 or 3, got {spatial_dims}"
            )
        if len(store) == 0:
            raise IndexError_("cannot index an empty store")
        self._store = store
        self._spatial_dims = spatial_dims
        self._rows_per_page = max(PAGE_BYTES // store.data.dtype.itemsize, 1)
        self.stats = IOStats()

    @property
    def store(self) -> CoefficientStore:
        return self._store

    @property
    def spatial_dims(self) -> int:
        return self._spatial_dims

    def __len__(self) -> int:
        return len(self._store)

    def _charge_io(self, rows: np.ndarray) -> None:
        pages = int(np.unique(rows // self._rows_per_page).size)
        self.stats.record_node(is_leaf=False, entries=len(self._store))
        for _ in range(pages):
            self.stats.record_node(is_leaf=True, entries=self._rows_per_page)
        self.stats.record_query()

    def query_rows(
        self,
        region: Box,
        w_min: float,
        w_max: float,
        *,
        half_open: bool = False,
    ) -> RowResult:
        """One vector pass: row ids whose support answers the query."""
        self.stats.push()
        rows = self._store.filter_rows(
            region,
            w_min,
            w_max,
            spatial_dims=self._spatial_dims,
            half_open=half_open,
        )
        self._charge_io(rows)
        return RowResult(rows=rows, io=self.stats.pop_delta())

    def query(self, region: Box, w_min: float, w_max: float) -> AccessResult:
        """Tree-compatible query surface (materialises record views)."""
        result = self.query_rows(region, w_min, w_max)
        records = list(self._store.records(result.rows))
        return AccessResult(
            records=records,
            io=result.io,
            retrieved_with_duplicates=len(records),
        )
