"""R*-tree (Beckmann et al., SIGMOD 1990), built on the R-tree core.

The paper's experiments index wavelet coefficients with an R*-tree
(Section VII-D).  This implementation adds the three R* improvements
over Guttman's tree:

* **ChooseSubtree** minimises *overlap* enlargement at the level above
  the leaves (and area enlargement elsewhere);
* **Split** picks the split axis by minimum total margin and the split
  point by minimum overlap;
* **Forced reinsertion** removes the ~30 % of entries farthest from an
  overflowing node's centre and reinserts them (once per level per
  insertion) before resorting to a split.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import IndexError_
from repro.geometry.box import Box, union_bounds
from repro.index.node import Entry, Node
from repro.index.rtree import DEFAULT_NODE_CAPACITY, RTree
from repro.index.stats import IOStats

__all__ = ["RStarTree"]


class RStarTree(RTree):
    """An R*-tree with forced reinsertion.

    Parameters
    ----------
    max_entries, min_entries, stats:
        As for :class:`~repro.index.rtree.RTree`.
    reinsert_fraction:
        Fraction of an overflowing node reinserted before splitting
        (the R* paper's recommended 30 %).  Set to 0 to disable forced
        reinsertion (used by the ablation benchmarks).
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_NODE_CAPACITY,
        min_entries: int | None = None,
        *,
        stats: IOStats | None = None,
        reinsert_fraction: float = 0.3,
    ) -> None:
        super().__init__(max_entries, min_entries, stats=stats)
        if not 0.0 <= reinsert_fraction < 1.0:
            raise IndexError_(
                f"reinsert_fraction must be in [0, 1), got {reinsert_fraction}"
            )
        self._reinsert_fraction = reinsert_fraction
        self._reinserted_levels: set[int] = set()

    # -- insertion with overflow treatment ----------------------------------------

    def insert(self, box: Box, payload: Any) -> None:
        self._reinserted_levels = set()
        super().insert(box, payload)

    def delete(self, box: Box, payload: Any) -> bool:
        self._reinserted_levels = set()
        return super().delete(box, payload)

    def _propagate_up(self, path: list[Node]) -> None:
        for depth in range(len(path) - 1, -1, -1):
            node = path[depth]
            if len(node.entries) > self._max:
                if (
                    depth > 0
                    and self._reinsert_fraction > 0.0
                    and node.level not in self._reinserted_levels
                ):
                    self._forced_reinsert(path, depth)
                    return  # _forced_reinsert fixed the upper path itself
                left, right = self._split_node(node)
                if depth == 0:
                    self._grow_root(left, right)
                else:
                    self._replace_child(path[depth - 1], node, left, right)
            elif depth > 0:
                self._refresh_parent_box(path[depth - 1], node)

    def _forced_reinsert(self, path: list[Node], depth: int) -> None:
        """Remove the farthest entries of ``path[depth]`` and reinsert them."""
        node = path[depth]
        self._reinserted_levels.add(node.level)
        count = max(1, int(self._reinsert_fraction * len(node.entries)))
        center = node.bounds().center
        # Sort by distance of entry centre from node centre, farthest last.
        order = sorted(
            range(len(node.entries)),
            key=lambda i: float(
                np.sum((node.entries[i].box.center - center) ** 2)
            ),
        )
        keep_idx = set(order[: len(node.entries) - count])
        removed = [e for i, e in enumerate(node.entries) if i not in keep_idx]
        node.entries = [e for i, e in enumerate(node.entries) if i in keep_idx]
        # Fix boxes up the (now consistent) path before reinserting.
        for d in range(depth, 0, -1):
            self._refresh_parent_box(path[d - 1], path[d])
        # Close reinsert: nearest of the removed entries first.
        removed.reverse()
        for entry in removed:
            self._insert_entry(entry, target_level=node.level)

    # -- R* subtree choice -----------------------------------------------------------

    def _choose_subtree(self, node: Node, box: Box) -> Entry:
        if node.level == 1:
            # Children are leaves: minimise overlap enlargement.
            best: Entry | None = None
            best_key: tuple[float, float, float] | None = None
            for entry in node.entries:
                enlarged = entry.box.union(box)
                overlap_before = self._overlap_with_siblings(node, entry, entry.box)
                overlap_after = self._overlap_with_siblings(node, entry, enlarged)
                key = (
                    overlap_after - overlap_before,
                    entry.box.enlargement(box),
                    entry.box.volume,
                )
                if best_key is None or key < best_key:
                    best, best_key = entry, key
            assert best is not None
            return best
        return super()._choose_subtree(node, box)

    @staticmethod
    def _overlap_with_siblings(node: Node, entry: Entry, box: Box) -> float:
        total = 0.0
        for other in node.entries:
            if other is entry:
                continue
            total += box.intersection_volume(other.box)
        return total

    # -- R* split -----------------------------------------------------------------------

    def _split_node(self, node: Node) -> tuple[Node, Node]:
        group_a, group_b = self._rstar_partition(node.entries)
        return Node(node.level, group_a), Node(node.level, group_b)

    def _rstar_partition(
        self, entries: list[Entry]
    ) -> tuple[list[Entry], list[Entry]]:
        ndim = entries[0].box.ndim
        m = self._min
        best_axis = -1
        best_margin = float("inf")
        axis_candidates: dict[int, list[tuple[list[Entry], list[Entry]]]] = {}
        for axis in range(ndim):
            margin_sum = 0.0
            candidates: list[tuple[list[Entry], list[Entry]]] = []
            for key in (
                lambda e: (float(e.box.low[axis]), float(e.box.high[axis])),
                lambda e: (float(e.box.high[axis]), float(e.box.low[axis])),
            ):
                ordered = sorted(entries, key=key)
                for k in range(m, len(ordered) - m + 1):
                    g1 = ordered[:k]
                    g2 = ordered[k:]
                    bb1 = union_bounds(e.box for e in g1)
                    bb2 = union_bounds(e.box for e in g2)
                    margin_sum += bb1.margin + bb2.margin
                    candidates.append((g1, g2))
            axis_candidates[axis] = candidates
            if margin_sum < best_margin:
                best_margin = margin_sum
                best_axis = axis
        # Among that axis's distributions: min overlap, then min total area.
        best_pair: tuple[list[Entry], list[Entry]] | None = None
        best_key: tuple[float, float] | None = None
        for g1, g2 in axis_candidates[best_axis]:
            bb1 = union_bounds(e.box for e in g1)
            bb2 = union_bounds(e.box for e in g2)
            key = (bb1.intersection_volume(bb2), bb1.volume + bb2.volume)
            if best_key is None or key < best_key:
                best_pair, best_key = (g1, g2), key
        assert best_pair is not None
        return list(best_pair[0]), list(best_pair[1])
