"""Nodes and entries of the R-tree family.

A leaf entry pairs a bounding box with an opaque payload; an internal
entry pairs a bounding box with a child node.  Nodes are plain mutable
containers -- all balancing logic lives in the tree classes.
"""

from __future__ import annotations

from typing import Any

from repro.errors import IndexError_
from repro.geometry.box import Box, union_bounds

__all__ = ["Entry", "Node"]


class Entry:
    """One slot of a node: a box plus either a payload or a child node."""

    __slots__ = ("box", "child", "payload")

    def __init__(self, box: Box, *, child: "Node | None" = None, payload: Any = None) -> None:
        if (child is None) == (payload is None):
            raise IndexError_("entry needs exactly one of child or payload")
        self.box = box
        self.child = child
        self.payload = payload

    @property
    def is_leaf_entry(self) -> bool:
        return self.child is None

    def __repr__(self) -> str:
        kind = "payload" if self.is_leaf_entry else "child"
        return f"Entry({self.box!r}, {kind})"


class Node:
    """An R-tree node holding up to ``max_entries`` entries.

    ``level`` is 0 for leaves and grows towards the root, so an entry of
    a level-``k`` node (k > 0) points to a level-``k-1`` child.
    """

    __slots__ = ("level", "entries")

    def __init__(self, level: int, entries: list[Entry] | None = None) -> None:
        if level < 0:
            raise IndexError_(f"node level must be >= 0, got {level}")
        self.level = level
        self.entries: list[Entry] = entries if entries is not None else []

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def bounds(self) -> Box:
        """The MBB of all entries; raises on an empty node."""
        if not self.entries:
            raise IndexError_("empty node has no bounds")
        return union_bounds(e.box for e in self.entries)

    def add(self, entry: Entry) -> None:
        """Append one entry, checking leaf/internal consistency."""
        if self.is_leaf and not entry.is_leaf_entry:
            raise IndexError_("cannot put a child entry into a leaf")
        if not self.is_leaf and entry.is_leaf_entry:
            raise IndexError_("cannot put a payload entry into an internal node")
        self.entries.append(entry)

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else f"level-{self.level}"
        return f"Node({kind}, {len(self.entries)} entries)"
