"""Incrementally maintainable packed index for epoch-versioned scenes.

:class:`~repro.index.packed.PackedIndex` is a *compilation*: its arrays
are frozen at build time and the only way to absorb a geometry change
is to rebuild the source tree and recompile -- a cost proportional to
the whole database, paid even when one object moved.  This module adds
the dynamic counterpart used by epoch-versioned scenes
(:class:`~repro.store.scene.SceneStore`).

Canonical structure
-------------------

Patching an STR-packed R*-tree in place can never reproduce what a
fresh build would produce: bulk loading re-sorts *every* entry, so one
moved object reshuffles node membership globally and the node-access
counts of a patched tree drift away from a rebuilt one.  Instead the
dynamic index derives its shape from a **fixed spatial grid**, making
the packed arrays a pure function of ``(row set, build parameters)``:

* every store row is assigned to the grid cell containing its support
  MBB centre (clamped to the grid);
* leaf entries are ordered by ``(cell, packed uid)`` -- cells in
  row-major order, rows within a cell in ascending uid order -- and
  chunked into leaf nodes of at most ``max_entries`` entries;
* each upper level takes one entry (the union box) per node below, in
  node order, again chunked into ``max_entries``-ary nodes, up to a
  single root node.

Because the layout never depends on *how* the current row set was
reached, applying an epoch delta incrementally and rebuilding from
scratch at that epoch yield **bit-identical arrays** -- identical
rows, identical uids, and identical node-access counts, which is the
parity contract the epoch tests pin down.

Incremental application
-----------------------

:meth:`DynamicPackedIndex.apply` consumes the
:class:`~repro.store.scene.FootprintDelta` of one epoch.  The common
continuous-motion case -- the same rows moved *within* their grid
cells -- changes neither membership nor leaf order, so the patch
overwrites only the changed slots' boxes and re-reduces the upper
levels over the unchanged node chunking.  When membership does change,
rows of unchanged objects keep their cells and their relative leaf
order, so the patch re-sorts only the members of *dirty* cells and
stitches them back between the untouched runs; one ``searchsorted``
against the new store's uid column re-bases leaf slots onto the new
row ids.  When
an epoch dirties more than ``drift_budget`` of the occupied cells the
segment bookkeeping stops paying and the index falls back to one
vectorised full recompile -- the result is identical either way, only
the cost differs (``patches`` / ``rebuilds`` count the choices).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import IndexError_
from repro.geometry.box import Box
from repro.index.access import AccessResult, _spatial_query_box
from repro.index.columnar import RowResult
from repro.index.packed import PackedCandidates, PackedIndex, PackedLevel
from repro.index.rtree import DEFAULT_NODE_CAPACITY
from repro.index.stats import IOStats
from repro.store.columns import CoefficientStore
from repro.store.scene import FootprintDelta
from repro.store.uids import uid_span

__all__ = [
    "GridSpec",
    "DynamicPackedIndex",
    "DynamicAccessMethod",
    "EpochView",
]

#: Default drift budget: patch while at most this fraction of occupied
#: cells is dirty, recompile beyond it.
DEFAULT_DRIFT_BUDGET = 0.25


def _expand_runs(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(s, e)`` over aligned run bounds."""
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = starts - np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(counts)[:-1]]
    )
    return np.repeat(offsets, counts) + np.arange(total, dtype=np.int64)


class GridSpec:
    """The frozen grid the dynamic index hangs its structure on.

    ``low``/``high`` bound the indexed space (rows outside are clamped
    to the border cells -- grouping only, correctness is unaffected);
    ``shape`` is the per-axis cell count.  The spec never changes after
    construction: epoch parity requires incremental and from-scratch
    builds to agree on it.
    """

    __slots__ = ("low", "high", "shape", "_cell_size")

    def __init__(
        self, low: np.ndarray, high: np.ndarray, shape: tuple[int, ...]
    ) -> None:
        self.low = np.asarray(low, dtype=np.float64)
        self.high = np.asarray(high, dtype=np.float64)
        if self.low.shape != self.high.shape or self.low.ndim != 1:
            raise IndexError_("grid corners must be matching 1-D vectors")
        if len(shape) != self.low.size:
            raise IndexError_(
                f"grid shape {shape} does not match {self.low.size}-D space"
            )
        if any(n < 1 for n in shape):
            raise IndexError_(f"grid shape must be positive, got {shape}")
        if bool(np.any(self.high <= self.low)):
            raise IndexError_("grid space must have positive extent")
        self.shape = tuple(int(n) for n in shape)
        self._cell_size = (self.high - self.low) / np.asarray(
            self.shape, dtype=np.float64
        )

    @property
    def ndim(self) -> int:
        return int(self.low.size)

    @property
    def cell_count(self) -> int:
        return int(np.prod(np.asarray(self.shape, dtype=np.int64)))

    def cells_for(self, low: np.ndarray, high: np.ndarray) -> np.ndarray:
        """Row-major cell ids of the boxes' centres (clamped)."""
        centers = (
            np.asarray(low, dtype=np.float64) + np.asarray(high, np.float64)
        ) / 2.0
        coords = np.floor((centers - self.low) / self._cell_size).astype(
            np.int64
        )
        limits = np.asarray(self.shape, dtype=np.int64) - 1
        coords = np.clip(coords, 0, limits)
        cell = coords[:, 0]
        for axis in range(1, self.ndim):
            cell = cell * self.shape[axis] + coords[:, axis]
        return np.asarray(cell, dtype=np.int64)

    @classmethod
    def fit(
        cls,
        store: CoefficientStore,
        *,
        spatial_dims: int,
        max_entries: int,
        margin: float = 0.5,
    ) -> "GridSpec":
        """Size a grid to a seed store: ~``max_entries`` rows per cell.

        The space is the seed's support extent inflated by ``margin``
        of its span per side, so moderate motion stays inside the grid;
        the per-axis resolution targets an average occupancy of one
        leaf node per cell at seed scale.
        """
        if len(store) == 0:
            low = np.zeros(spatial_dims)
            high = np.ones(spatial_dims)
        else:
            low = store.support_low[:, :spatial_dims].min(axis=0)
            high = store.support_high[:, :spatial_dims].max(axis=0)
        span = np.maximum(high - low, 1e-9)
        low = low - margin * span
        high = high + margin * span
        cells = max(
            1,
            int(
                np.ceil(
                    (max(len(store), 1) / max_entries) ** (1.0 / spatial_dims)
                )
            ),
        )
        return cls(low, high, (cells,) * spatial_dims)


class DynamicPackedIndex:
    """A packed support-MBB x value index that absorbs epoch deltas.

    Query surface and I/O accounting are those of
    :class:`~repro.index.packed.PackedIndex` -- the compiled arrays are
    traversed by exactly the same frontier walk -- but the arrays can
    be *re-derived* after a scene epoch via :meth:`apply` at a cost
    proportional to the dirty cells rather than the database.
    """

    __slots__ = (
        "_grid",
        "_spatial_dims",
        "_max_entries",
        "_drift_budget",
        "_store",
        "_cells",
        "_leaf_uids",
        "_leaf_cells",
        "_leaf_boxes",
        "_occupied",
        "_packed",
        "stats",
        "patches",
        "rebuilds",
    )

    def __init__(
        self,
        store: CoefficientStore,
        *,
        spatial_dims: int = 2,
        max_entries: int = DEFAULT_NODE_CAPACITY,
        grid: GridSpec | None = None,
        drift_budget: float = DEFAULT_DRIFT_BUDGET,
        stats: IOStats | None = None,
    ) -> None:
        if spatial_dims not in (2, 3):
            raise IndexError_(
                f"spatial_dims must be 2 or 3, got {spatial_dims}"
            )
        if max_entries < 2:
            raise IndexError_(f"max_entries must be >= 2, got {max_entries}")
        if not 0.0 <= drift_budget <= 1.0:
            raise IndexError_(
                f"drift_budget must lie in [0, 1], got {drift_budget}"
            )
        self._spatial_dims = spatial_dims
        self._max_entries = int(max_entries)
        self._drift_budget = float(drift_budget)
        if grid is None:
            grid = GridSpec.fit(
                store, spatial_dims=spatial_dims, max_entries=max_entries
            )
        if grid.ndim != spatial_dims:
            raise IndexError_(
                f"grid is {grid.ndim}-D but spatial_dims is {spatial_dims}"
            )
        self._grid = grid
        self.stats = stats if stats is not None else IOStats()
        self.patches = 0
        self.rebuilds = 0
        self._load(store)

    # -- construction ------------------------------------------------------

    def _load(self, store: CoefficientStore) -> None:
        """Derive every array from scratch for ``store``."""
        uids = store.packed_uids
        if uids.size and not bool(np.all(uids[:-1] < uids[1:])):
            raise IndexError_(
                "dynamic index requires ascending-uid store rows "
                "(SceneStore views are; raw stores may need canonicalising)"
            )
        d = self._spatial_dims
        cells = self._grid.cells_for(
            store.support_low[:, :d], store.support_high[:, :d]
        )
        order = np.argsort(cells, kind="stable")  # (cell, uid) order
        self._store = store
        self._cells = cells
        self._leaf_uids = uids[order]
        self._leaf_cells = cells[order]
        self._compile(order)

    def _compile(self, leaf_rows: np.ndarray) -> None:
        """Derive the leaf boxes from the store, then assemble levels.

        The patch path skips this: it splices the previous epoch's leaf
        box array (unchanged rows keep identical columns, hence
        identical boxes) and goes straight to :meth:`_assemble`.
        """
        self._leaf_boxes = self._store_boxes(self._store, leaf_rows)
        self._assemble(leaf_rows)

    def _store_boxes(
        self, store: CoefficientStore, rows_idx: np.ndarray
    ) -> np.ndarray:
        """Fused ``[low | high]`` leaf boxes for the given store rows.

        One ``(k, 2 * (d + 1))`` row per store row -- low corner in the
        left half, high corner in the right, the value ``w`` as the
        last column of each.  Keeping both corners in one array makes
        the patch path's survivor move a single gather.
        """
        d = self._spatial_dims
        d1 = d + 1
        out = np.empty((rows_idx.size, 2 * d1))
        out[:, :d] = store.support_low[rows_idx, :d]
        out[:, d1 : d1 + d] = store.support_high[rows_idx, :d]
        out[:, d] = out[:, d1 + d] = store.values[rows_idx]
        return out

    def _assemble(self, leaf_rows: np.ndarray) -> None:
        """Chunk the leaf arrays into packed levels (pure layout)."""
        n = int(leaf_rows.size)
        d = self._spatial_dims
        if n == 0:
            self._occupied = 0
            self._packed = PackedIndex(
                (), np.empty(0, dtype=np.int64), (), ndim=d + 1,
                stats=self.stats,
            )
            return
        cap = self._max_entries
        # Leaf nodes: per-cell runs chunked into <= cap entries.  The
        # leaf cells are sorted, so run lengths come from the breaks.
        breaks = np.flatnonzero(self._leaf_cells[1:] != self._leaf_cells[:-1])
        ends = np.concatenate([breaks + 1, [n]])
        counts = np.diff(np.concatenate([[0], ends]))
        self._occupied = int(counts.size)
        chunks = -(-counts // cap)  # ceil division
        sizes = np.full(int(chunks.sum()), cap, dtype=np.int64)
        sizes[np.cumsum(chunks) - 1] = counts - (chunks - 1) * cap
        node_start = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(sizes)]
        )
        self._assemble_levels(leaf_rows, node_start)

    def _assemble_levels(
        self, leaf_rows: np.ndarray, node_start: np.ndarray
    ) -> None:
        """Build the upper levels over a fixed leaf chunking."""
        cap = self._max_entries
        d1 = self._spatial_dims + 1
        boxes = self._leaf_boxes
        levels = [
            self._frozen_level(boxes[:, :d1], boxes[:, d1:], node_start)
        ]
        while levels[-1].node_count > 1:
            child = levels[-1]
            starts = child.node_start[:-1]
            up_low = np.minimum.reduceat(child.low, starts, axis=0)
            up_high = np.maximum.reduceat(child.high, starts, axis=0)
            count = child.node_count
            node_start = np.arange(
                0, count + cap, cap, dtype=np.int64
            ).clip(max=count)
            node_start = np.unique(node_start)
            levels.append(self._frozen_level(up_low, up_high, node_start))
        levels.reverse()
        self._packed = PackedIndex(
            levels,
            leaf_rows,
            (),
            ndim=self._spatial_dims + 1,
            stats=self.stats,
        )

    @staticmethod
    def _frozen_level(
        low: np.ndarray, high: np.ndarray, node_start: np.ndarray
    ) -> PackedLevel:
        low = np.ascontiguousarray(low)
        high = np.ascontiguousarray(high)
        node_start = np.ascontiguousarray(node_start)
        low.setflags(write=False)
        high.setflags(write=False)
        node_start.setflags(write=False)
        return PackedLevel(low=low, high=high, node_start=node_start)

    # -- epoch application -------------------------------------------------

    def apply(
        self, store: CoefficientStore, footprint: FootprintDelta
    ) -> None:
        """Absorb one epoch: re-derive the arrays for ``store``.

        ``store`` is the *new* epoch view; ``footprint`` summarises how
        it differs from the view the index currently holds.  The
        resulting arrays are bit-identical to a from-scratch build over
        ``store`` with the same grid and capacity.
        """
        if footprint.is_empty:
            self._store = store  # pure epoch tick: same rows, same arrays
            return
        old_uids = self._store.packed_uids
        new_uids = store.packed_uids
        # Packing keeps each object's uids contiguous in sorted order,
        # so the changed rows are per-object span probes rather than a
        # full-column unpack-and-match.
        span_low, span_high = uid_span(footprint.changed_ids)
        ch_old = _expand_runs(
            np.searchsorted(old_uids, span_low, side="left"),
            np.searchsorted(old_uids, span_high, side="right"),
        )
        ins = _expand_runs(
            np.searchsorted(new_uids, span_low, side="left"),
            np.searchsorted(new_uids, span_high, side="right"),
        )
        if old_uids.size - ch_old.size != new_uids.size - ins.size:
            raise IndexError_(
                "footprint delta does not explain the store change"
            )
        d = self._spatial_dims
        ins_cells = self._grid.cells_for(
            store.support_low[ins, :d], store.support_high[ins, :d]
        )
        dirty = np.unique(np.concatenate([self._cells[ch_old], ins_cells]))
        if dirty.size > self._drift_budget * max(self._occupied, 1):
            self.rebuilds += 1
            self._load(store)
            return
        self.patches += 1

        # Split the changed rows into in-cell movers (same uid, same
        # cell: the continuous-motion common case) and membership
        # changes (rows inserted, removed, or crossing cells).
        old_ch_uids = old_uids[ch_old]
        if old_ch_uids.size:
            at = np.minimum(
                np.searchsorted(old_ch_uids, new_uids[ins]),
                old_ch_uids.size - 1,
            )
            matched = old_ch_uids[at] == new_uids[ins]
            partner = ch_old[at]  # old row of each matched changed uid
            mover = matched & (ins_cells == self._cells[partner])
        else:
            at = np.zeros(ins.size, dtype=np.int64)
            partner = np.zeros(ins.size, dtype=np.int64)
            mover = np.zeros(ins.size, dtype=bool)
        claimed = np.zeros(ch_old.size, dtype=bool)
        claimed[at[mover]] = True
        gone = ch_old[~claimed]  # old rows leaving the index
        mig = ins[~mover]  # new rows entering (or re-entering) it
        mig_cells = ins_cells[~mover]

        rows = self._packed.rows  # leaf slot -> old store row
        inv = np.empty(old_uids.size, dtype=np.int64)
        inv[rows] = np.arange(rows.size, dtype=np.int64)
        m_new = ins[mover]
        self._store = store
        if gone.size == 0 and mig.size == 0:
            # Pure in-cell motion: membership, leaf order, cells, row
            # ids and node chunking are all unchanged -- only the
            # changed slots' boxes differ, so overwrite them and
            # re-reduce the upper levels over the same chunking.
            boxes = self._leaf_boxes.copy()
            if m_new.size:
                boxes[inv[partner[mover]]] = self._store_boxes(store, m_new)
            self._leaf_boxes = boxes
            if rows.size:
                self._assemble_levels(
                    rows, self._packed.levels[-1].node_start
                )
            return

        # Membership changed: drop the vacated slots, then place each
        # entering row at its (cell, uid) position among the survivors
        # (whose relative leaf order is already correct).
        del_slots = np.sort(inv[gone])
        keep = np.ones(rows.size, dtype=bool)
        keep[del_slots] = False
        keep = np.flatnonzero(keep)
        surv_uids = np.take(self._leaf_uids, keep)
        surv_cells = np.take(self._leaf_cells, keep)
        order = np.lexsort((new_uids[mig], mig_cells))
        mig = mig[order]
        mig_cells = mig_cells[order]
        mig_uids = new_uids[mig]
        pos = np.searchsorted(surv_cells, mig_cells, side="left")
        if mig.size:
            end = np.searchsorted(surv_cells, mig_cells, side="right")
            # Within each target cell's survivor run, order by uid.
            breaks = np.flatnonzero(mig_cells[1:] != mig_cells[:-1]) + 1
            starts = np.concatenate([np.zeros(1, dtype=np.int64), breaks])
            stops = np.concatenate(
                [breaks, np.asarray([mig.size], dtype=np.int64)]
            )
            for a, b in zip(starts, stops):
                offs = np.searchsorted(
                    surv_uids[pos[a] : end[a]], mig_uids[a:b]
                )
                pos[a:b] += offs
        # One shared slot layout splices every leaf array: migrants
        # land on ``mig_slots``, survivors fill the rest in order.
        # ``src`` maps every new slot to the old slot it copies from
        # (migrant slots read a placeholder and are overwritten), so
        # each array moves with a single ``np.take`` gather instead of
        # a gather-plus-scatter pair.
        total = surv_uids.size + mig.size
        mig_slots = pos + np.arange(pos.size, dtype=np.int64)
        surv_slots = np.ones(total, dtype=bool)
        surv_slots[mig_slots] = False
        surv_slots = np.flatnonzero(surv_slots)
        if keep.size:
            src = np.zeros(total, dtype=np.int64)
            src[surv_slots] = keep
            leaf_uids = np.take(self._leaf_uids, src)
            leaf_cells = np.take(self._leaf_cells, src)
            boxes = np.take(self._leaf_boxes, src, axis=0)
            slot_old_rows = np.take(rows, src)
        else:
            leaf_uids = np.empty(total, dtype=np.int64)
            leaf_cells = np.empty(total, dtype=np.int64)
            boxes = np.empty((total, 2 * (d + 1)))
            slot_old_rows = np.zeros(total, dtype=np.int64)
        leaf_uids[mig_slots] = mig_uids
        leaf_cells[mig_slots] = mig_cells
        boxes[mig_slots] = self._store_boxes(store, mig)
        if m_new.size:
            # Movers survived the splice with stale boxes: overwrite
            # them at their final slots (old slot, shifted down by the
            # deletions before it and up by the insertions before it).
            s = inv[partner[mover]]
            at_surv = s - np.searchsorted(del_slots, s)
            final = at_surv + np.searchsorted(pos, at_surv, side="right")
            boxes[final] = self._store_boxes(store, m_new)
        # Re-base leaf slots onto new store rows without a full-column
        # searchsorted: uid order is preserved among survivors, so the
        # k-th surviving old row *is* the k-th non-entering new row.
        entering = np.zeros(new_uids.size, dtype=bool)
        entering[mig] = True
        keep_rows = np.ones(old_uids.size, dtype=bool)
        keep_rows[gone] = False
        old_surv_rows = np.flatnonzero(keep_rows)
        new_surv_rows = np.flatnonzero(~entering)
        row_map = np.zeros(max(old_uids.size, 1), dtype=np.int64)
        row_map[old_surv_rows] = new_surv_rows
        leaf_rows = np.take(row_map, slot_old_rows)
        leaf_rows[mig_slots] = mig
        cells = np.empty(new_uids.size, dtype=np.int64)
        cells[new_surv_rows] = np.take(self._cells, old_surv_rows)
        cells[mig] = mig_cells
        self._cells = cells
        self._leaf_uids = leaf_uids
        self._leaf_cells = leaf_cells
        self._leaf_boxes = boxes
        self._assemble(leaf_rows)

    # -- accessors ---------------------------------------------------------

    @property
    def store(self) -> CoefficientStore:
        return self._store

    @property
    def grid(self) -> GridSpec:
        return self._grid

    @property
    def max_entries(self) -> int:
        return self._max_entries

    @property
    def packed(self) -> PackedIndex:
        """The compiled arrays for the current epoch view."""
        return self._packed

    def __len__(self) -> int:
        return len(self._store)


class _PackedQuerySurface:
    """The :class:`~repro.index.packed.PackedAccessMethod` query
    surface, expressed against ``self.store`` / ``self.packed`` /
    ``self.spatial_dims`` / ``self.stats``.

    Shared by the live :class:`DynamicAccessMethod` (whose arrays step
    forward per epoch) and the pinned :class:`EpochView` (whose arrays
    are one retained epoch's compilation).
    """

    store: CoefficientStore
    packed: PackedIndex
    spatial_dims: int
    stats: IOStats

    def query_box(self, region: Box, w_min: float, w_max: float) -> Box:
        """The full index-space box of ``Q(region, w_min, w_max)``."""
        if not 0.0 <= w_min <= w_max <= 1.0:
            raise IndexError_(
                f"invalid value band [{w_min}, {w_max}]; "
                "need 0 <= min <= max <= 1"
            )
        spatial = _spatial_query_box(region, self.spatial_dims)
        return spatial.augment([w_min], [w_max])

    def query_rows(
        self,
        region: Box,
        w_min: float,
        w_max: float,
        *,
        half_open: bool = False,
    ) -> RowResult:
        """One frontier walk: store rows answering the query."""
        box = self.query_box(region, w_min, w_max)
        self.stats.push()
        rows = self.packed.query_rows(box)
        io = self.stats.pop_delta()
        if half_open and rows.size:
            rows = rows[self.store.values[rows] < w_max]
        return RowResult(rows=rows, io=io)

    def query_batch(
        self, subqueries: Sequence[tuple[Box, float, float]]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Compact batch answer ``(rows, counts, io)`` (scatter currency)."""
        if not subqueries:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, np.zeros((0, 3), dtype=np.int64)
        boxes = [
            self.query_box(region, w_min, w_max)
            for region, w_min, w_max in subqueries
        ]
        qlow = np.vstack([box.low for box in boxes])
        qhigh = np.vstack([box.high for box in boxes])
        packed = self.packed
        slots, slot_qid, io = packed.query_slots_many(qlow, qhigh)
        counts = np.bincount(slot_qid, minlength=len(boxes)).astype(np.int64)
        return packed.rows[slots], counts, io

    def query_rows_many(
        self, subqueries: Sequence[tuple[Box, float, float]]
    ) -> list[RowResult]:
        """Batch of sub-queries, answers identical to a serial loop."""
        rows, counts, io = self.query_batch(subqueries)
        bounds = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
        )
        out: list[RowResult] = []
        for q in range(len(subqueries)):
            stats = IOStats(
                node_reads=int(io[q, 0]),
                leaf_reads=int(io[q, 1]),
                entries_scanned=int(io[q, 2]),
                queries=1,
            )
            out.append(
                RowResult(rows=rows[bounds[q] : bounds[q + 1]], io=stats)
            )
        return out

    def query(self, region: Box, w_min: float, w_max: float) -> AccessResult:
        """Tree-compatible query surface (materialises record views)."""
        result = self.query_rows(region, w_min, w_max)
        records = list(self.store.records(result.rows))
        return AccessResult(
            records=records,
            io=result.io,
            retrieved_with_duplicates=len(records),
        )

    def candidates(self, box: Box) -> PackedCandidates:
        """Raw-box traversal keeping survivors (the planner's refresh)."""
        self.stats.push()
        cand = self.packed.candidates(box)
        self.stats.pop_delta()
        return cand


class DynamicAccessMethod(_PackedQuerySurface):
    """Drop-in access method over a :class:`DynamicPackedIndex`.

    Call-compatible with
    :class:`~repro.index.packed.PackedAccessMethod` -- ``query_rows``,
    ``query_batch``, ``query_rows_many``, ``candidates`` and the
    ``stats`` counter behave identically -- plus :meth:`apply` to step
    the underlying index to the next epoch view and :meth:`pin` to
    retain the *current* epoch's compiled arrays as a frozen
    :class:`EpochView` for as-of-epoch answering.
    """

    def __init__(
        self,
        store: CoefficientStore,
        *,
        spatial_dims: int = 2,
        max_entries: int = DEFAULT_NODE_CAPACITY,
        grid: GridSpec | None = None,
        drift_budget: float = DEFAULT_DRIFT_BUDGET,
    ) -> None:
        self.stats = IOStats()
        self._index = DynamicPackedIndex(
            store,
            spatial_dims=spatial_dims,
            max_entries=max_entries,
            grid=grid,
            drift_budget=drift_budget,
            stats=self.stats,
        )
        self._spatial_dims = spatial_dims

    # -- epoch stepping ----------------------------------------------------

    def apply(
        self, store: CoefficientStore, footprint: FootprintDelta
    ) -> None:
        """Advance to the next epoch view (see
        :meth:`DynamicPackedIndex.apply`)."""
        self._index.apply(store, footprint)

    def pin(self) -> "EpochView":
        """Freeze the current epoch's arrays as a pinned query surface.

        The returned view stays valid (and cheap: no copies) after
        later :meth:`apply` calls, because each epoch step compiles a
        *new* :class:`~repro.index.packed.PackedIndex` rather than
        mutating the previous one.  I/O is billed to the same
        :attr:`stats` counter as the live surface.
        """
        return EpochView(
            store=self._index.store,
            packed=self._index.packed,
            spatial_dims=self._spatial_dims,
            stats=self.stats,
        )

    # -- accessors ---------------------------------------------------------

    @property
    def store(self) -> CoefficientStore:
        return self._index.store

    @property
    def spatial_dims(self) -> int:
        return self._spatial_dims

    @property
    def index(self) -> DynamicPackedIndex:
        return self._index

    @property
    def packed(self) -> PackedIndex:
        return self._index.packed

    def __len__(self) -> int:
        return len(self._index)


class EpochView(_PackedQuerySurface):
    """One retained epoch's compiled arrays behind the query surface."""

    def __init__(
        self,
        *,
        store: CoefficientStore,
        packed: PackedIndex,
        spatial_dims: int,
        stats: IOStats,
    ) -> None:
        self._store = store
        self._packed = packed
        self._spatial_dims = spatial_dims
        self.stats = stats

    @property
    def store(self) -> CoefficientStore:
        return self._store

    @property
    def packed(self) -> PackedIndex:
        return self._packed

    @property
    def spatial_dims(self) -> int:
        return self._spatial_dims

    def __len__(self) -> int:
        return len(self._store)
