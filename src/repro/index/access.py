"""The two access methods of Section VI.

Both answer the multi-resolution window query ``Q(R, w_max, w_min)``:
return every coefficient needed to visualise the region ``R`` at the
resolution band ``[w_min, w_max]``.

* :class:`NaivePointAccessMethod` -- the straightforward approach the
  paper describes first: index each coefficient as a *point*
  ``(position, w)``.  Points inside ``R`` are not sufficient (vertices
  just outside ``R`` still shape triangles inside it), so after the
  first pass the method computes the bounding region of the retrieved
  coefficients' neighbourhoods and re-executes the query on that
  extended region -- paying a second traversal and retrieving
  duplicates.

* :class:`MotionAwareAccessMethod` -- the paper's contribution: index
  the MBB of each coefficient's *support region* together with its
  value.  A single traversal returns exactly the coefficients whose
  support intersects ``R`` in the requested band, which Section VI-B
  argues is the minimum sufficient set.

Both default to the paper's experimental configuration: a 3-D
``(x, y, w)`` R*-tree with node capacity 20 (4 KB pages).  Passing
``spatial_dims=3`` switches to the full 4-D ``(x, y, z, w)`` form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import IndexError_
from repro.geometry.box import Box, union_bounds
from repro.index.bulk import bulk_load
from repro.index.rstar import RStarTree
from repro.index.rtree import DEFAULT_NODE_CAPACITY, RTree
from repro.index.stats import IOStats
from repro.wavelets.coefficients import CoefficientRecord

__all__ = [
    "AccessResult",
    "NaivePointAccessMethod",
    "MotionAwareAccessMethod",
]


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one multi-resolution window query.

    Attributes
    ----------
    records:
        The retrieved coefficient records (duplicates removed).
    io:
        Node accesses etc. spent on this query.
    retrieved_with_duplicates:
        Total leaf matches including re-retrievals; for the naive
        method this exceeds ``len(records)`` whenever the second pass
        re-reads first-pass results.
    """

    records: list[CoefficientRecord]
    io: IOStats
    retrieved_with_duplicates: int

    @property
    def total_bytes(self) -> int:
        return sum(r.size_bytes for r in self.records)


def _spatial_query_box(region: Box, spatial_dims: int) -> Box:
    if region.ndim == spatial_dims:
        return region
    if region.ndim == 3 and spatial_dims == 2:
        return region.project((0, 1))
    if region.ndim == 2 and spatial_dims == 3:
        # Lift a 2-D window to all heights.
        return region.augment([-1e12], [1e12])
    raise IndexError_(
        f"query region is {region.ndim}-D but the index is {spatial_dims}-D"
    )


class _AccessMethodBase:
    """Shared construction: build a tree over per-record boxes."""

    def __init__(
        self,
        records: Sequence[CoefficientRecord],
        *,
        spatial_dims: int = 2,
        max_entries: int = DEFAULT_NODE_CAPACITY,
        tree_class: Callable[..., RTree] = RStarTree,
        bulk: bool = True,
    ) -> None:
        if spatial_dims not in (2, 3):
            raise IndexError_(f"spatial_dims must be 2 or 3, got {spatial_dims}")
        self._spatial_dims = spatial_dims
        self.stats = IOStats()
        items = [(self._record_box(r), r) for r in records]
        if bulk:
            self._tree = bulk_load(
                items,
                max_entries=max_entries,
                tree_class=tree_class,
                stats=self.stats,
            )
        else:
            self._tree = tree_class(max_entries, stats=self.stats)
            for box, record in items:
                self._tree.insert(box, record)

    @property
    def spatial_dims(self) -> int:
        return self._spatial_dims

    @property
    def tree(self) -> RTree:
        return self._tree

    def __len__(self) -> int:
        return len(self._tree)

    def _record_box(self, record: CoefficientRecord) -> Box:
        raise NotImplementedError

    def _augment_with_band(self, spatial: Box, w_min: float, w_max: float) -> Box:
        if not 0.0 <= w_min <= w_max <= 1.0:
            raise IndexError_(
                f"invalid value band [{w_min}, {w_max}]; need 0 <= min <= max <= 1"
            )
        return spatial.augment([w_min], [w_max])

    def insert(self, record: CoefficientRecord) -> None:
        """Add one record dynamically."""
        self._tree.insert(self._record_box(record), record)

    def delete(self, record: CoefficientRecord) -> bool:
        """Remove one record; True when found."""
        return self._tree.delete(self._record_box(record), record)


class MotionAwareAccessMethod(_AccessMethodBase):
    """Support-region MBB x value index (Section VI-B)."""

    def _record_box(self, record: CoefficientRecord) -> Box:
        spatial = record.support_box.project(tuple(range(self._spatial_dims)))
        return spatial.augment([record.value], [record.value])

    def query(self, region: Box, w_min: float, w_max: float) -> AccessResult:
        """One traversal: support boxes intersecting ``region`` in band."""
        spatial = _spatial_query_box(region, self._spatial_dims)
        query_box = self._augment_with_band(spatial, w_min, w_max)
        self.stats.push()
        records = self._tree.search(query_box)
        io = self.stats.pop_delta()
        return AccessResult(
            records=list(records),
            io=io,
            retrieved_with_duplicates=len(records),
        )


class NaivePointAccessMethod(_AccessMethodBase):
    """Coefficient-position point index with neighbour re-query.

    Each record also carries its support box (standing in for the
    "additional information, neighboring vertices" the paper says this
    method must store) which the second pass uses to build the extended
    region.
    """

    def _record_box(self, record: CoefficientRecord) -> Box:
        point = record.position[: self._spatial_dims]
        spatial = Box(point, point)
        return spatial.augment([record.value], [record.value])

    def query(self, region: Box, w_min: float, w_max: float) -> AccessResult:
        """Two traversals: points in ``R``, then the extended region."""
        spatial = _spatial_query_box(region, self._spatial_dims)
        query_box = self._augment_with_band(spatial, w_min, w_max)
        self.stats.push()
        first_pass: list[CoefficientRecord] = self._tree.search(query_box)
        retrieved = len(first_pass)
        results: dict[tuple[int, int, int], CoefficientRecord] = {
            r.uid: r for r in first_pass
        }
        if first_pass:
            extended = union_bounds(
                r.support_box.project(tuple(range(self._spatial_dims)))
                for r in first_pass
            )
            if not spatial.contains_box(extended):
                extended_box = self._augment_with_band(
                    extended.union(spatial), w_min, w_max
                )
                second_pass = self._tree.search(extended_box)
                retrieved += len(second_pass)
                for r in second_pass:
                    results[r.uid] = r
        io = self.stats.pop_delta()
        return AccessResult(
            records=list(results.values()),
            io=io,
            retrieved_with_duplicates=retrieved,
        )
