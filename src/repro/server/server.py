"""The data server.

Executes :class:`~repro.net.messages.RetrieveRequest`s: runs each
``(region, band)`` sub-query separately against the access method
(mirroring Section IV, where the difference region is split into
rectangles and executed as separate sub-queries), filters out records
the client already holds (the server-side filtering step of Figure 3),
and ships base meshes for objects the client sees for the first time.

The hot path is columnar: sub-queries return row-id arrays into the
database's :class:`~repro.store.columns.CoefficientStore`, the
already-delivered filter is one sorted-uid :func:`numpy.searchsorted`
join against the request's packed
:class:`~repro.store.uids.UidSet`, and cross-region deduplication is a
single :func:`numpy.unique` merge -- no per-record Python objects or
hash lookups.  :meth:`Server.execute_per_record` keeps the original
object-at-a-time implementation for comparison benchmarks.

Query answering is decomposed coordinator-style into two stages so a
sharded backend (:mod:`repro.shard`) can swap the fetch stage without
touching the merge semantics: *fetch* (:meth:`Server._region_rows`, one
:class:`RowResult` per sub-query) and *gather*
(:meth:`Server.gather_batch`, the half-open / no-reship filters plus
the first-occurrence uid merge).  Every fetch result is canonicalised
to ascending packed-uid order, which makes the response independent of
the access method's traversal order -- a scatter-gather over spatial
shards reassembles bit-identical responses because each shard's rows
land in the same canonical sequence the monolithic index would yield.

Per-client state is bounded: the server remembers which base meshes it
shipped to at most ``max_clients`` clients, evicting the least recently
served client when the table is full and on explicit
:meth:`Server.reset_client` / :meth:`Server.disconnect`.  Block
shipping is split into a side-effect-free *quote* and an explicit
*commit*, so a transfer that dies on the wire never marks its records
as delivered.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.errors import ConfigurationError, ProtocolError
from repro.geometry.box import Box
from repro.net.messages import (
    LATEST_EPOCH,
    BaseMeshPayload,
    CoefficientBatch,
    RegionRequest,
    RetrieveBatchResponse,
    RetrieveRequest,
    RetrieveResponse,
)
from repro.index.columnar import RowResult
from repro.server.database import ObjectDatabase
from repro.server.planner import FrontierPlanner
from repro.store.columns import CoefficientStore
from repro.store.scene import FootprintDelta, SceneDelta
from repro.store.uids import UidSet, pack_uid
from repro.wavelets.coefficients import CoefficientRecord

__all__ = ["Server", "BlockQuote"]

#: Default cap on how many clients' shipped-base sets the server keeps.
DEFAULT_MAX_CLIENTS = 1024


@dataclass(frozen=True)
class BlockQuote:
    """A priced but uncommitted block shipment.

    ``payload_bytes`` includes base-mesh connectivity for objects in
    ``new_base_ids`` -- objects this client would see for the first
    time.  Committing the quote marks those bases as shipped.
    ``new_uids`` is a packed :class:`UidSet` (it compares equal to the
    legacy ``frozenset`` of uid triples).
    """

    client_id: int
    payload_bytes: int
    io_node_reads: int
    new_uids: UidSet
    new_base_ids: frozenset[int]


class Server:
    """Query-processing front end over an :class:`ObjectDatabase`.

    The server is stateless with respect to clients except for the
    ``known_objects`` hint carried in requests and the bounded
    shipped-bases table, which keep the protocol one-round-trip.
    """

    def __init__(
        self,
        database: ObjectDatabase,
        *,
        max_clients: int = DEFAULT_MAX_CLIENTS,
        plan_deltas: bool = False,
    ):
        if max_clients < 1:
            raise ConfigurationError(
                f"max_clients must be >= 1, got {max_clients}"
            )
        self._db = database
        self._max_clients = max_clients
        # Opt-in frame-delta planning: per-client frontier memos over the
        # packed index answer queries contained in the previous frame's
        # inflated window without a root traversal.  Off by default
        # because warm frames bill fewer node reads than the cold walk,
        # which would break I/O-accounting parity with the per-record
        # reference path.  Silently degrades to cold traversal when the
        # database's access method is not packed.
        self._plan_deltas = plan_deltas
        self._planner: FrontierPlanner | None = None
        # Per-client set of object ids whose base mesh has been shipped,
        # in least-recently-served order for eviction.
        self._shipped_bases: OrderedDict[int, set[int]] = OrderedDict()

    @property
    def database(self) -> ObjectDatabase:
        return self._db

    @property
    def max_clients(self) -> int:
        return self._max_clients

    @property
    def client_count(self) -> int:
        """Clients with live shipped-base state."""
        return len(self._shipped_bases)

    def _client_bases(self, client_id: int) -> set[int]:
        """The client's shipped set, created and LRU-touched."""
        if client_id in self._shipped_bases:
            self._shipped_bases.move_to_end(client_id)
            return self._shipped_bases[client_id]
        while len(self._shipped_bases) >= self._max_clients:
            evicted, _ = self._shipped_bases.popitem(last=False)
            self._client_evicted(evicted)
        shipped: set[int] = set()
        self._shipped_bases[client_id] = shipped
        return shipped

    def _client_evicted(self, client_id: int) -> None:
        """A client left the shipped-bases table; drop derived state.

        Called on explicit resets *and* on LRU eviction, so planner
        memos (here and, via override, in every shard of a sharded
        coordinator) never outlive the client slot that anchored them
        -- an evicted client that reconnects must refresh cold rather
        than warm-hit a memo built for state the server forgot.
        """
        if self._planner is not None:
            self._planner.forget(client_id)

    def reset_client(self, client_id: int) -> None:
        """Forget which base meshes a client already received."""
        self._shipped_bases.pop(client_id, None)
        self._client_evicted(client_id)

    def disconnect(self, client_id: int) -> None:
        """Drop all per-client state (alias of :meth:`reset_client`)."""
        self.reset_client(client_id)

    # -- query answering (columnar) --------------------------------------------

    @property
    def planner(self) -> FrontierPlanner | None:
        """The live frame-delta planner, or None when it cannot apply.

        Built lazily (constructing it forces the index build) and torn
        down and rebuilt whenever the database swaps its access method
        -- e.g. after ``add_object`` invalidates the index -- so memos
        never outlive the packed arrays they point into.
        """
        if not self._plan_deltas or not self._db.object_count:
            return None
        method = self._db.packed_access_method()
        if method is None:
            return None
        if self._planner is None or self._planner.method is not method:
            self._planner = FrontierPlanner(
                method, max_clients=self._max_clients
            )
        return self._planner

    def _resolve_epoch(self, request: RetrieveRequest) -> int:
        """The epoch this request is answered at.

        :data:`~repro.net.messages.LATEST_EPOCH` resolves to the
        database's current epoch (0 for static databases); a pinned
        epoch must not lie in the future.
        """
        current = self._db.current_epoch
        if request.epoch == LATEST_EPOCH:
            return current
        if request.epoch > current:
            raise ProtocolError(
                f"request pins epoch {request.epoch} but the server is "
                f"at epoch {current}"
            )
        return request.epoch

    def _canonical(
        self, result: RowResult, store: CoefficientStore | None = None
    ) -> RowResult:
        """Re-order a sub-query's rows into ascending packed-uid order.

        The canonical delivery order decouples responses from the
        access method's traversal order: any backend producing the same
        row *set* (monolithic tree, columnar scan, sharded
        scatter-gather) yields a bit-identical response.  ``store`` is
        the row space the result indexes into -- the live store by
        default, a pinned epoch's view for as-of-epoch answers.
        """
        if store is None:
            store = self._db.store
        rows = result.rows
        if rows.size > 1:
            order = np.argsort(store.packed_uids[rows], kind="stable")
            rows = rows[order]
        return RowResult(rows=rows, io=result.io)

    def _region_rows(
        self,
        client_id: int,
        region: Box,
        w_min: float,
        w_max: float,
        *,
        epoch: int | None = None,
    ) -> RowResult:
        """One sub-query: via the client's frontier memo when planning.

        A pinned past epoch bypasses the planner (memos track the live
        index only) and queries the retained epoch view directly.
        """
        if epoch is not None and epoch != self._db.current_epoch:
            return self._canonical(
                self._db.query_region_rows_at(epoch, region, w_min, w_max),
                self._db.store_at(epoch),
            )
        planner = self.planner
        if planner is not None:
            return self._canonical(
                planner.query_rows(client_id, region, w_min, w_max)
            )
        return self._canonical(self._db.query_region_rows(region, w_min, w_max))

    def fetch_batch(self, request: RetrieveRequest) -> list[RowResult]:
        """Fetch stage: one canonical :class:`RowResult` per sub-query.

        The default implementation runs the sub-queries serially
        against the database; a sharded coordinator overrides this with
        a scatter-gather over the intersecting shards.
        """
        epoch = self._resolve_epoch(request)
        return [
            self._region_rows(
                request.client_id,
                region_req.region,
                region_req.w_min,
                region_req.w_max,
                epoch=epoch,
            )
            for region_req in request.regions
        ]

    def execute_batch(self, request: RetrieveRequest) -> RetrieveBatchResponse:
        """Answer one retrieve request on the columnar path.

        Sub-queries return row ids; the incremental-band and
        already-delivered filters are vectorised masks, and the
        cross-region merge keeps the first occurrence of each uid
        (matching the per-record dict merge exactly).
        """
        return self.gather_batch(request, self.fetch_batch(request))

    def execute_many(
        self, requests: Iterable[RetrieveRequest]
    ) -> list[RetrieveBatchResponse]:
        """Answer several requests; a hook for batch-amortised backends.

        The base server simply loops; a sharded coordinator groups all
        sub-queries per shard and scatters each group as one batched
        traversal, which is where process-parallel execution pays off.
        """
        return [self.execute_batch(request) for request in requests]

    def gather_batch(
        self, request: RetrieveRequest, region_results: list[RowResult]
    ) -> RetrieveBatchResponse:
        """Gather stage: filter, merge and price fetched sub-queries.

        ``region_results`` holds one canonical-order :class:`RowResult`
        per ``request.regions`` entry.  All per-client state mutation
        (shipped-base bookkeeping) happens here, in request order, so
        any fetch strategy that produces the same row sets commits the
        same state.
        """
        epoch = self._resolve_epoch(request)
        store = self._db.store_at(epoch)
        exclude = request.exclude_uids
        kept: list[np.ndarray] = []
        io_total = 0
        filtered = 0
        for region_req, result in zip(request.regions, region_results):
            io_total += result.io.node_reads
            rows = result.rows
            if region_req.half_open and rows.size:
                # Incremental band [w_min, w_max): the upper edge was
                # already delivered at the previous resolution.
                in_band = store.values[rows] < region_req.w_max
                filtered += int(rows.size - np.count_nonzero(in_band))
                rows = rows[in_band]
            if rows.size:
                fresh = ~exclude.contains_packed(store.packed_uids[rows])
                filtered += int(rows.size - np.count_nonzero(fresh))
                rows = rows[fresh]
            kept.append(rows)
        merged = self._merge_first_occurrence(store.packed_uids, kept)
        base_meshes = self._base_payloads_rows(
            request.client_id, merged, store
        )
        return RetrieveBatchResponse(
            request=request,
            base_meshes=base_meshes,
            batch=CoefficientBatch(store=store, rows=merged),
            io_node_reads=io_total,
            filtered_out=filtered,
            epoch=epoch,
        )

    @staticmethod
    def _merge_first_occurrence(
        packed_uids: np.ndarray, row_groups: list[np.ndarray]
    ) -> np.ndarray:
        """Concatenate row groups, dropping repeated uids after the first."""
        if not row_groups:
            return np.empty(0, dtype=np.int64)
        rows = np.concatenate(row_groups)
        if rows.size == 0:
            return rows
        _, first = np.unique(packed_uids[rows], return_index=True)
        first.sort()
        return rows[first]

    def execute(self, request: RetrieveRequest) -> RetrieveResponse:
        """Answer one retrieve request as a legacy per-record response."""
        return self.execute_batch(request).to_response()

    # -- epoch advance ---------------------------------------------------------

    def advance_epoch(self, delta: SceneDelta) -> FootprintDelta:
        """Apply one scene delta and invalidate every dependent cache.

        Requires an epoch-capable database
        (:class:`~repro.server.scene.SceneDatabase`); static databases
        raise.  After the store and index have stepped, :meth:`_on_epoch`
        walks the server-side caches: planner memos intersecting a
        changed object's dirty footprint are dropped (survivors are
        re-based into the new row space), and the changed object ids
        leave every client's shipped-bases set so re-meshed or moved
        bases ship again.  Untouched objects' cached state survives.
        """
        old_store = self._db.store if self._db.object_count else None
        footprint = self._db.advance_epoch(delta)
        self._on_epoch(footprint, old_store, self._db.store)
        return footprint

    def _on_epoch(
        self,
        footprint: FootprintDelta,
        old_store: CoefficientStore | None,
        new_store: CoefficientStore,
    ) -> None:
        """Scoped cache invalidation for one epoch step."""
        if self._planner is not None and old_store is not None:
            self._planner.apply_epoch(
                footprint, old_store.packed_uids, new_store.packed_uids
            )
        if not footprint.is_empty:
            changed = {int(i) for i in footprint.changed_ids}
            for shipped in self._shipped_bases.values():
                shipped -= changed

    def execute_per_record(self, request: RetrieveRequest) -> RetrieveResponse:
        """The original object-at-a-time implementation.

        Kept as the reference path for parity tests and the datapath
        benchmark; result sets are identical to :meth:`execute`.
        """
        merged: dict[tuple[int, int, int], CoefficientRecord] = {}
        io_total = 0
        filtered = 0
        exclude = request.exclude_uids
        for region_req in request.regions:
            result = self._db.query_region(
                region_req.region, region_req.w_min, region_req.w_max
            )
            io_total += result.io.node_reads
            # Canonical per-region delivery order (ascending packed uid),
            # mirroring the batch path's _canonical re-ordering.
            records = sorted(
                result.records,
                key=lambda r: pack_uid(r.object_id, r.key.level, r.key.index),
            )
            for record in records:
                if region_req.half_open and record.value >= region_req.w_max:
                    filtered += 1
                    continue
                if record.uid in exclude:
                    filtered += 1
                    continue
                merged[record.uid] = record
        records = tuple(merged.values())
        displacements = tuple(
            tuple(float(x) for x in self._db.displacement(r.uid)) for r in records
        )
        base_meshes = self._base_payloads(request.client_id, records)
        return RetrieveResponse(
            request=request,
            base_meshes=base_meshes,
            records=records,
            displacements=displacements,
            io_node_reads=io_total,
            filtered_out=filtered,
        )

    def retrieve(
        self,
        client_id: int,
        timestamp: float,
        regions: list[RegionRequest],
        exclude_uids: UidSet | Iterable[tuple[int, int, int]] | None = None,
    ) -> RetrieveResponse:
        """Convenience wrapper building the request object."""
        if not regions:
            raise ProtocolError("retrieve needs at least one region")
        request = RetrieveRequest(
            timestamp=timestamp,
            client_id=client_id,
            regions=tuple(regions),
            exclude_uids=UidSet.coerce(exclude_uids),
        )
        return self.execute(request)

    # -- block quoting ---------------------------------------------------------

    def _base_connectivity_bytes(self, object_id: int) -> int:
        obj = self._db.get_object(object_id)
        return obj.base_bytes - (
            obj.decomposition.base.vertex_count
            * self._db.encoding.base_vertex_bytes()
        )

    def quote_block(
        self,
        client_id: int,
        region: Box,
        w_min: float,
        exclude_uids: UidSet | Iterable[tuple[int, int, int]] | None,
        *,
        assume_shipped_bases: frozenset[int] = frozenset(),
    ) -> BlockQuote:
        """Price one block shipment without committing any state.

        ``assume_shipped_bases`` lets a caller quoting several blocks in
        one round trip avoid double-counting a base mesh two blocks
        share; pass the union of ``new_base_ids`` quoted so far.
        """
        store = self._db.store
        exclude = UidSet.coerce(exclude_uids)
        result = self._region_rows(client_id, region, w_min, 1.0)
        rows = result.rows
        if rows.size:
            rows = rows[~exclude.contains_packed(store.packed_uids[rows])]
        payload = store.payload_bytes(rows)
        shipped = self._shipped_bases.get(client_id, set())
        new_bases: set[int] = set()
        base_rows = rows[store.levels[rows] == -1]
        for oid in np.unique(store.object_ids[base_rows]):
            oid = int(oid)
            if oid not in shipped and oid not in assume_shipped_bases:
                new_bases.add(oid)
                # Connectivity cost of the base mesh, shipped once.
                payload += self._base_connectivity_bytes(oid)
        return BlockQuote(
            client_id=client_id,
            payload_bytes=payload,
            io_node_reads=result.io.node_reads,
            new_uids=store.uid_set(rows),
            new_base_ids=frozenset(new_bases),
        )

    def commit_quote(self, quote: BlockQuote) -> None:
        """Mark a quoted shipment as delivered (bases now shipped)."""
        if quote.new_base_ids:
            self._client_bases(quote.client_id).update(quote.new_base_ids)

    def block_payload_bytes(
        self,
        client_id: int,
        region: Box,
        w_min: float,
        exclude_uids: UidSet | Iterable[tuple[int, int, int]] | None,
    ) -> tuple[int, int, UidSet]:
        """Quote one block and commit it immediately.

        Returns ``(payload_bytes, io_node_reads, new_uids)``.  Kept for
        callers on a reliable link; the fault-aware systems quote first
        and commit only after the wire transfer succeeds.
        """
        quote = self.quote_block(client_id, region, w_min, exclude_uids)
        self.commit_quote(quote)
        return (quote.payload_bytes, quote.io_node_reads, quote.new_uids)

    # -- base-mesh shipping ----------------------------------------------------

    def _base_payloads_rows(
        self,
        client_id: int,
        rows: np.ndarray,
        store: CoefficientStore | None = None,
    ) -> tuple[BaseMeshPayload, ...]:
        """Base meshes to ship for a merged row batch (first-seen order)."""
        if store is None:
            store = self._db.store
        base_rows = rows[store.levels[rows] == -1]
        if base_rows.size == 0:
            # Still touch the client's LRU slot, as the legacy path did.
            self._client_bases(client_id)
            return ()
        oids = store.object_ids[base_rows]
        _, first = np.unique(oids, return_index=True)
        first.sort()
        return self._ship_bases(client_id, (int(oids[i]) for i in first))

    def _base_payloads(
        self, client_id: int, records: tuple[CoefficientRecord, ...]
    ) -> tuple[BaseMeshPayload, ...]:
        """Per-record twin of :meth:`_base_payloads_rows`."""
        ordered: dict[int, None] = {}
        for record in records:
            if record.key.is_base:
                ordered.setdefault(record.object_id, None)
        return self._ship_bases(client_id, iter(ordered))

    def _ship_bases(
        self, client_id: int, object_ids: Iterable[int]
    ) -> tuple[BaseMeshPayload, ...]:
        shipped = self._client_bases(client_id)
        payloads = []
        for oid in object_ids:
            if oid in shipped:
                continue
            shipped.add(oid)
            obj = self._db.get_object(oid)
            connectivity = self._base_connectivity_bytes(oid)
            payloads.append(
                BaseMeshPayload(
                    object_id=oid,
                    mesh=obj.decomposition.base,
                    size_bytes=max(connectivity, 1),
                )
            )
        return tuple(payloads)
