"""The data server.

Executes :class:`~repro.net.messages.RetrieveRequest`s: runs each
``(region, band)`` sub-query separately against the access method
(mirroring Section IV, where the difference region is split into
rectangles and executed as separate sub-queries), filters out records
the client already holds (the server-side filtering step of Figure 3),
and ships base meshes for objects the client sees for the first time.

Per-client state is bounded: the server remembers which base meshes it
shipped to at most ``max_clients`` clients, evicting the least recently
served client when the table is full and on explicit
:meth:`Server.reset_client` / :meth:`Server.disconnect`.  Block
shipping is split into a side-effect-free *quote* and an explicit
*commit*, so a transfer that dies on the wire never marks its records
as delivered.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ConfigurationError, ProtocolError
from repro.geometry.box import Box
from repro.net.messages import (
    BaseMeshPayload,
    RegionRequest,
    RetrieveRequest,
    RetrieveResponse,
)
from repro.server.database import ObjectDatabase
from repro.wavelets.coefficients import CoefficientRecord

__all__ = ["Server", "BlockQuote"]

#: Default cap on how many clients' shipped-base sets the server keeps.
DEFAULT_MAX_CLIENTS = 1024


@dataclass(frozen=True)
class BlockQuote:
    """A priced but uncommitted block shipment.

    ``payload_bytes`` includes base-mesh connectivity for objects in
    ``new_base_ids`` -- objects this client would see for the first
    time.  Committing the quote marks those bases as shipped.
    """

    client_id: int
    payload_bytes: int
    io_node_reads: int
    new_uids: frozenset[tuple[int, int, int]]
    new_base_ids: frozenset[int]


class Server:
    """Query-processing front end over an :class:`ObjectDatabase`.

    The server is stateless with respect to clients except for the
    ``known_objects`` hint carried in requests and the bounded
    shipped-bases table, which keep the protocol one-round-trip.
    """

    def __init__(
        self, database: ObjectDatabase, *, max_clients: int = DEFAULT_MAX_CLIENTS
    ):
        if max_clients < 1:
            raise ConfigurationError(
                f"max_clients must be >= 1, got {max_clients}"
            )
        self._db = database
        self._max_clients = max_clients
        # Per-client set of object ids whose base mesh has been shipped,
        # in least-recently-served order for eviction.
        self._shipped_bases: OrderedDict[int, set[int]] = OrderedDict()

    @property
    def database(self) -> ObjectDatabase:
        return self._db

    @property
    def max_clients(self) -> int:
        return self._max_clients

    @property
    def client_count(self) -> int:
        """Clients with live shipped-base state."""
        return len(self._shipped_bases)

    def _client_bases(self, client_id: int) -> set[int]:
        """The client's shipped set, created and LRU-touched."""
        if client_id in self._shipped_bases:
            self._shipped_bases.move_to_end(client_id)
            return self._shipped_bases[client_id]
        while len(self._shipped_bases) >= self._max_clients:
            self._shipped_bases.popitem(last=False)
        shipped: set[int] = set()
        self._shipped_bases[client_id] = shipped
        return shipped

    def reset_client(self, client_id: int) -> None:
        """Forget which base meshes a client already received."""
        self._shipped_bases.pop(client_id, None)

    def disconnect(self, client_id: int) -> None:
        """Drop all per-client state (alias of :meth:`reset_client`)."""
        self.reset_client(client_id)

    def execute(self, request: RetrieveRequest) -> RetrieveResponse:
        """Answer one retrieve request.

        Sub-queries are executed separately; their results are merged,
        deduplicated, filtered against ``request.exclude_uids``, and
        annotated with raw displacement payloads.
        """
        merged: dict[tuple[int, int, int], CoefficientRecord] = {}
        io_total = 0
        filtered = 0
        for region_req in request.regions:
            result = self._db.query_region(
                region_req.region, region_req.w_min, region_req.w_max
            )
            io_total += result.io.node_reads
            for record in result.records:
                if region_req.half_open and record.value >= region_req.w_max:
                    # Incremental band [w_min, w_max): the upper edge was
                    # already delivered at the previous resolution.
                    filtered += 1
                    continue
                if record.uid in request.exclude_uids:
                    filtered += 1
                    continue
                merged[record.uid] = record
        records = tuple(merged.values())
        displacements = tuple(
            tuple(float(x) for x in self._db.displacement(r.uid)) for r in records
        )
        base_meshes = self._base_payloads(request.client_id, records)
        return RetrieveResponse(
            request=request,
            base_meshes=base_meshes,
            records=records,
            displacements=displacements,
            io_node_reads=io_total,
            filtered_out=filtered,
        )

    def retrieve(
        self,
        client_id: int,
        timestamp: float,
        regions: list[RegionRequest],
        exclude_uids: frozenset[tuple[int, int, int]] = frozenset(),
    ) -> RetrieveResponse:
        """Convenience wrapper building the request object."""
        if not regions:
            raise ProtocolError("retrieve needs at least one region")
        request = RetrieveRequest(
            timestamp=timestamp,
            client_id=client_id,
            regions=tuple(regions),
            exclude_uids=exclude_uids,
        )
        return self.execute(request)

    def _base_connectivity_bytes(self, object_id: int) -> int:
        obj = self._db.get_object(object_id)
        return obj.base_bytes - (
            obj.decomposition.base.vertex_count
            * self._db.encoding.base_vertex_bytes()
        )

    def quote_block(
        self,
        client_id: int,
        region: Box,
        w_min: float,
        exclude_uids: frozenset[tuple[int, int, int]],
        *,
        assume_shipped_bases: frozenset[int] = frozenset(),
    ) -> BlockQuote:
        """Price one block shipment without committing any state.

        ``assume_shipped_bases`` lets a caller quoting several blocks in
        one round trip avoid double-counting a base mesh two blocks
        share; pass the union of ``new_base_ids`` quoted so far.
        """
        result = self._db.query_region(region, w_min, 1.0)
        new_records = [r for r in result.records if r.uid not in exclude_uids]
        payload = sum(r.size_bytes for r in new_records)
        shipped = self._shipped_bases.get(client_id, set())
        new_bases: set[int] = set()
        for record in new_records:
            if (
                record.key.is_base
                and record.object_id not in shipped
                and record.object_id not in assume_shipped_bases
                and record.object_id not in new_bases
            ):
                new_bases.add(record.object_id)
                # Connectivity cost of the base mesh, shipped once.
                payload += self._base_connectivity_bytes(record.object_id)
        return BlockQuote(
            client_id=client_id,
            payload_bytes=payload,
            io_node_reads=result.io.node_reads,
            new_uids=frozenset(r.uid for r in new_records),
            new_base_ids=frozenset(new_bases),
        )

    def commit_quote(self, quote: BlockQuote) -> None:
        """Mark a quoted shipment as delivered (bases now shipped)."""
        if quote.new_base_ids:
            self._client_bases(quote.client_id).update(quote.new_base_ids)

    def block_payload_bytes(
        self,
        client_id: int,
        region: Box,
        w_min: float,
        exclude_uids: frozenset[tuple[int, int, int]],
    ) -> tuple[int, int, frozenset[tuple[int, int, int]]]:
        """Quote one block and commit it immediately.

        Returns ``(payload_bytes, io_node_reads, new_uids)``.  Kept for
        callers on a reliable link; the fault-aware systems quote first
        and commit only after the wire transfer succeeds.
        """
        quote = self.quote_block(client_id, region, w_min, exclude_uids)
        self.commit_quote(quote)
        return (quote.payload_bytes, quote.io_node_reads, quote.new_uids)

    def _base_payloads(
        self, client_id: int, records: tuple[CoefficientRecord, ...]
    ) -> tuple[BaseMeshPayload, ...]:
        shipped = self._client_bases(client_id)
        payloads = []
        for record in records:
            if not record.key.is_base:
                continue
            oid = record.object_id
            if oid in shipped:
                continue
            shipped.add(oid)
            obj = self._db.get_object(oid)
            connectivity = self._base_connectivity_bytes(oid)
            payloads.append(
                BaseMeshPayload(
                    object_id=oid,
                    mesh=obj.decomposition.base,
                    size_bytes=max(connectivity, 1),
                )
            )
        return tuple(payloads)
