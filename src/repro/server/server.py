"""The data server.

Executes :class:`~repro.net.messages.RetrieveRequest`s: runs each
``(region, band)`` sub-query separately against the access method
(mirroring Section IV, where the difference region is split into
rectangles and executed as separate sub-queries), filters out records
the client already holds (the server-side filtering step of Figure 3),
and ships base meshes for objects the client sees for the first time.
"""

from __future__ import annotations

from repro.errors import ProtocolError
from repro.geometry.box import Box
from repro.net.messages import (
    BaseMeshPayload,
    RegionRequest,
    RetrieveRequest,
    RetrieveResponse,
)
from repro.server.database import ObjectDatabase
from repro.wavelets.coefficients import CoefficientRecord

__all__ = ["Server"]


class Server:
    """Query-processing front end over an :class:`ObjectDatabase`.

    The server is stateless with respect to clients except for the
    ``known_objects`` hint carried in requests, which keeps the protocol
    one-round-trip.
    """

    def __init__(self, database: ObjectDatabase):
        self._db = database
        # Per-client set of object ids whose base mesh has been shipped.
        self._shipped_bases: dict[int, set[int]] = {}

    @property
    def database(self) -> ObjectDatabase:
        return self._db

    def reset_client(self, client_id: int) -> None:
        """Forget which base meshes a client already received."""
        self._shipped_bases.pop(client_id, None)

    def execute(self, request: RetrieveRequest) -> RetrieveResponse:
        """Answer one retrieve request.

        Sub-queries are executed separately; their results are merged,
        deduplicated, filtered against ``request.exclude_uids``, and
        annotated with raw displacement payloads.
        """
        merged: dict[tuple[int, int, int], CoefficientRecord] = {}
        io_total = 0
        filtered = 0
        for region_req in request.regions:
            result = self._db.query_region(
                region_req.region, region_req.w_min, region_req.w_max
            )
            io_total += result.io.node_reads
            for record in result.records:
                if region_req.half_open and record.value >= region_req.w_max:
                    # Incremental band [w_min, w_max): the upper edge was
                    # already delivered at the previous resolution.
                    filtered += 1
                    continue
                if record.uid in request.exclude_uids:
                    filtered += 1
                    continue
                merged[record.uid] = record
        records = tuple(merged.values())
        displacements = tuple(
            tuple(float(x) for x in self._db.displacement(r.uid)) for r in records
        )
        base_meshes = self._base_payloads(request.client_id, records)
        return RetrieveResponse(
            request=request,
            base_meshes=base_meshes,
            records=records,
            displacements=displacements,
            io_node_reads=io_total,
            filtered_out=filtered,
        )

    def retrieve(
        self,
        client_id: int,
        timestamp: float,
        regions: list[RegionRequest],
        exclude_uids: frozenset[tuple[int, int, int]] = frozenset(),
    ) -> RetrieveResponse:
        """Convenience wrapper building the request object."""
        if not regions:
            raise ProtocolError("retrieve needs at least one region")
        request = RetrieveRequest(
            timestamp=timestamp,
            client_id=client_id,
            regions=tuple(regions),
            exclude_uids=exclude_uids,
        )
        return self.execute(request)

    def block_payload_bytes(
        self,
        client_id: int,
        region: Box,
        w_min: float,
        exclude_uids: frozenset[tuple[int, int, int]],
    ) -> tuple[int, int, frozenset[tuple[int, int, int]]]:
        """Bytes and I/O to ship one block, minus already-sent records.

        Returns ``(payload_bytes, io_node_reads, new_uids)``.  Used by
        the end-to-end system simulation where the buffer layer fetches
        whole blocks but the wire must not re-carry shared records.
        """
        result = self._db.query_region(region, w_min, 1.0)
        new_records = [r for r in result.records if r.uid not in exclude_uids]
        payload = sum(r.size_bytes for r in new_records)
        shipped = self._shipped_bases.setdefault(client_id, set())
        for record in new_records:
            if record.key.is_base and record.object_id not in shipped:
                shipped.add(record.object_id)
                obj = self._db.get_object(record.object_id)
                # Connectivity cost of the base mesh, shipped once.
                payload += obj.base_bytes - (
                    obj.decomposition.base.vertex_count
                    * self._db.encoding.base_vertex_bytes()
                )
        return (
            payload,
            result.io.node_reads,
            frozenset(r.uid for r in new_records),
        )

    def _base_payloads(
        self, client_id: int, records: tuple[CoefficientRecord, ...]
    ) -> tuple[BaseMeshPayload, ...]:
        shipped = self._shipped_bases.setdefault(client_id, set())
        payloads = []
        for record in records:
            if not record.key.is_base:
                continue
            oid = record.object_id
            if oid in shipped:
                continue
            shipped.add(oid)
            obj = self._db.get_object(oid)
            connectivity = obj.base_bytes - (
                obj.decomposition.base.vertex_count
                * self._db.encoding.base_vertex_bytes()
            )
            payloads.append(
                BaseMeshPayload(
                    object_id=oid,
                    mesh=obj.decomposition.base,
                    size_bytes=max(connectivity, 1),
                )
            )
        return tuple(payloads)
