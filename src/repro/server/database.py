"""The server-side 3-D object database.

Stores a set of wavelet-decomposed objects, flattens their coefficient
records, and builds the spatial access method over them.  Exposes the
two query surfaces the rest of the system needs:

* :meth:`ObjectDatabase.query_region` -- the multi-resolution window
  query ``Q(R, w_max, w_min)`` against the configured access method;
* :meth:`ObjectDatabase.block_bytes` -- the wire size of one buffer
  block (grid cell x resolution), used by the buffer managers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.geometry.box import Box
from repro.geometry.grid import CellId, Grid
from repro.index.access import (
    AccessResult,
    MotionAwareAccessMethod,
    NaivePointAccessMethod,
)
from repro.wavelets.analysis import WaveletDecomposition
from repro.wavelets.coefficients import CoefficientRecord
from repro.wavelets.encoding import DEFAULT_ENCODING, EncodingModel

__all__ = ["StoredObject", "ObjectDatabase"]


@dataclass(frozen=True)
class StoredObject:
    """One object as stored on the server."""

    object_id: int
    decomposition: WaveletDecomposition
    records: tuple[CoefficientRecord, ...]
    base_bytes: int

    @property
    def footprint(self) -> Box:
        """2-D (x, y) bounding box of the object's base mesh."""
        bb = self.decomposition.base.bounding_box()
        return bb.project((0, 1))

    @property
    def total_bytes(self) -> int:
        return self.base_bytes + sum(
            r.size_bytes for r in self.records if not r.key.is_base
        )


class ObjectDatabase:
    """A collection of wavelet-decomposed 3-D objects plus an index.

    Parameters
    ----------
    encoding:
        Byte accounting model for all wire sizes.
    access_method:
        ``"motion_aware"`` (support-region index, the paper's) or
        ``"naive"`` (point index with neighbour re-query).
    spatial_dims:
        2 for the paper's ``(x, y, w)`` index; 3 for ``(x, y, z, w)``.
    """

    def __init__(
        self,
        *,
        encoding: EncodingModel = DEFAULT_ENCODING,
        access_method: str = "motion_aware",
        spatial_dims: int = 2,
    ):
        if access_method not in ("motion_aware", "naive"):
            raise WorkloadError(f"unknown access method {access_method!r}")
        self._encoding = encoding
        self._method_name = access_method
        self._spatial_dims = spatial_dims
        self._objects: dict[int, StoredObject] = {}
        self._method: MotionAwareAccessMethod | NaivePointAccessMethod | None = None
        self._displacements: dict[tuple[int, int, int], np.ndarray] = {}
        self._block_cache: dict[tuple[CellId, float, int], int] = {}

    # -- construction ---------------------------------------------------------------

    @property
    def encoding(self) -> EncodingModel:
        return self._encoding

    @property
    def object_count(self) -> int:
        return len(self._objects)

    @property
    def objects(self) -> list[StoredObject]:
        return list(self._objects.values())

    def add_object(self, object_id: int, decomposition: WaveletDecomposition) -> None:
        """Store one decomposed object (invalidates the index)."""
        if object_id in self._objects:
            raise WorkloadError(f"object id {object_id} already stored")
        records = tuple(decomposition.records(object_id, self._encoding))
        base_bytes = self._encoding.base_mesh_bytes(
            decomposition.base.vertex_count, decomposition.base.face_count
        )
        self._objects[object_id] = StoredObject(
            object_id=object_id,
            decomposition=decomposition,
            records=records,
            base_bytes=base_bytes,
        )
        for record in records:
            if record.key.is_base:
                disp = record.position
            else:
                level = decomposition.levels[record.key.level]
                disp = level.displacements[record.key.index]
            self._displacements[record.uid] = np.asarray(disp, dtype=float)
        self._method = None
        self._block_cache.clear()

    def get_object(self, object_id: int) -> StoredObject:
        if object_id not in self._objects:
            raise WorkloadError(f"no object with id {object_id}")
        return self._objects[object_id]

    def displacement(self, uid: tuple[int, int, int]) -> np.ndarray:
        """Raw payload vector of a record (detail displacement / base position)."""
        if uid not in self._displacements:
            raise WorkloadError(f"unknown record uid {uid}")
        return self._displacements[uid]

    @property
    def total_bytes(self) -> int:
        """Full-resolution dataset size (the paper's 20-80 MB axis)."""
        return sum(obj.total_bytes for obj in self._objects.values())

    @property
    def record_count(self) -> int:
        return sum(len(obj.records) for obj in self._objects.values())

    def all_records(self) -> list[CoefficientRecord]:
        out: list[CoefficientRecord] = []
        for obj in self._objects.values():
            out.extend(obj.records)
        return out

    # -- the access method ---------------------------------------------------------

    @property
    def access_method(self) -> MotionAwareAccessMethod | NaivePointAccessMethod:
        """The (lazily built) spatial access method over all records."""
        if self._method is None:
            records = self.all_records()
            if not records:
                raise WorkloadError("cannot index an empty database")
            if self._method_name == "motion_aware":
                self._method = MotionAwareAccessMethod(
                    records, spatial_dims=self._spatial_dims
                )
            else:
                self._method = NaivePointAccessMethod(
                    records, spatial_dims=self._spatial_dims
                )
        return self._method

    def query_region(
        self, region: Box, w_min: float, w_max: float
    ) -> AccessResult:
        """Multi-resolution window query against the access method."""
        return self.access_method.query(region, w_min, w_max)

    # -- block interface for the buffer layer ------------------------------------------

    def block_bytes(self, grid: Grid, cell: CellId, w_min: float) -> int:
        """Wire size of one buffer block: all records answering the cell.

        Uses the access method (without I/O side effects on the block
        cache hit path) and memoises per (cell, resolution) because the
        buffer managers ask repeatedly.
        """
        key = (cell, round(w_min, 6), id(grid))
        if key in self._block_cache:
            return self._block_cache[key]
        result = self.query_region(grid.cell_box(cell), w_min, 1.0)
        size = result.total_bytes
        self._block_cache[key] = size
        return size

    def block_bytes_fn(self, grid: Grid):
        """A ``(cell, w_min) -> bytes`` callable bound to ``grid``."""

        def fn(cell: CellId, w_min: float) -> int:
            return self.block_bytes(grid, cell, w_min)

        return fn
