"""The server-side 3-D object database.

Stores a set of wavelet-decomposed objects in one columnar
:class:`~repro.store.columns.CoefficientStore` (built at decomposition
time, concatenated lazily across objects) and builds the spatial access
method over it.  Exposes the query surfaces the rest of the system
needs:

* :meth:`ObjectDatabase.query_region_rows` -- the multi-resolution
  window query ``Q(R, w_max, w_min)`` returning *row ids* into the
  store (the vectorised currency of the serving stack);
* :meth:`ObjectDatabase.query_region` -- the same query materialised as
  per-record views, for legacy consumers;
* :meth:`ObjectDatabase.block_rows` / :meth:`ObjectDatabase.block_bytes`
  -- one buffer block (grid cell x resolution) as rows / wire bytes,
  used by the buffer managers.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable

import numpy as np

from repro.errors import StoreError, WorkloadError
from repro.geometry.box import Box
from repro.geometry.grid import CellId, Grid
from repro.index.access import (
    AccessResult,
    MotionAwareAccessMethod,
    NaivePointAccessMethod,
)
from repro.index.columnar import ColumnarAccessMethod, RowResult
from repro.index.dynamic import DynamicAccessMethod
from repro.index.packed import PackedAccessMethod
from repro.index.stats import IOStats
from repro.store.columns import CoefficientStore
from repro.store.scene import FootprintDelta, SceneDelta
from repro.store.uids import pack_uid
from repro.wavelets.analysis import WaveletDecomposition
from repro.wavelets.coefficients import CoefficientRecord
from repro.wavelets.encoding import DEFAULT_ENCODING, EncodingModel

__all__ = ["StoredObject", "ObjectDatabase", "ACCESS_METHODS"]

#: The selectable access methods.
ACCESS_METHODS = ("packed", "motion_aware", "naive", "columnar")

AnyAccessMethod = (
    MotionAwareAccessMethod
    | NaivePointAccessMethod
    | ColumnarAccessMethod
    | PackedAccessMethod
    | DynamicAccessMethod
)


class StoredObject:
    """One object as stored on the server: decomposition + column rows."""

    def __init__(
        self,
        object_id: int,
        decomposition: WaveletDecomposition,
        store: CoefficientStore,
        base_bytes: int,
    ) -> None:
        self.object_id = object_id
        self.decomposition = decomposition
        self.store = store
        self.base_bytes = base_bytes

    @cached_property
    def records(self) -> tuple[CoefficientRecord, ...]:
        """Per-record views of this object's rows (built on first use)."""
        return self.store.records()

    @property
    def footprint(self) -> Box:
        """2-D (x, y) bounding box of the object's base mesh."""
        bb = self.decomposition.base.bounding_box()
        return bb.project((0, 1))

    @property
    def total_bytes(self) -> int:
        detail = ~self.store.base_mask
        return self.base_bytes + int(self.store.sizes[detail].sum())

    def __repr__(self) -> str:
        return (
            f"StoredObject(id={self.object_id}, rows={len(self.store)}, "
            f"base_bytes={self.base_bytes})"
        )


class ObjectDatabase:
    """A collection of wavelet-decomposed 3-D objects plus an index.

    Parameters
    ----------
    encoding:
        Byte accounting model for all wire sizes.
    access_method:
        ``"packed"`` (the paper's support-region R*-tree compiled to
        flat arrays, traversed one vectorised level at a time -- the
        default: identical result sets and node-access counts to
        ``"motion_aware"``, a fraction of the wall-clock),
        ``"motion_aware"`` (the object-tree walk, kept for dynamic
        insert/delete workloads and as the parity reference),
        ``"naive"`` (point index with neighbour re-query), or
        ``"columnar"`` (vectorised batch scan over the store with a
        paged I/O model).
    spatial_dims:
        2 for the paper's ``(x, y, w)`` index; 3 for ``(x, y, z, w)``.
    """

    def __init__(
        self,
        *,
        encoding: EncodingModel = DEFAULT_ENCODING,
        access_method: str = "packed",
        spatial_dims: int = 2,
    ):
        if access_method not in ACCESS_METHODS:
            raise WorkloadError(f"unknown access method {access_method!r}")
        self._encoding = encoding
        self._method_name = access_method
        self._spatial_dims = spatial_dims
        self._objects: dict[int, StoredObject] = {}
        self._method: AnyAccessMethod | None = None
        self._store: CoefficientStore | None = None
        self._block_cache: dict[tuple[CellId, float, int], np.ndarray] = {}

    # -- construction ---------------------------------------------------------------

    @property
    def encoding(self) -> EncodingModel:
        return self._encoding

    @property
    def method_name(self) -> str:
        return self._method_name

    @property
    def spatial_dims(self) -> int:
        """2 for the paper's ``(x, y, w)`` index; 3 for ``(x, y, z, w)``."""
        return self._spatial_dims

    @property
    def object_count(self) -> int:
        return len(self._objects)

    @property
    def objects(self) -> list[StoredObject]:
        return list(self._objects.values())

    def add_object(self, object_id: int, decomposition: WaveletDecomposition) -> None:
        """Store one decomposed object (invalidates the index)."""
        if object_id in self._objects:
            raise WorkloadError(f"object id {object_id} already stored")
        store = decomposition.column_store(object_id, self._encoding)
        base_bytes = self._encoding.base_mesh_bytes(
            decomposition.base.vertex_count, decomposition.base.face_count
        )
        self._objects[object_id] = StoredObject(
            object_id=object_id,
            decomposition=decomposition,
            store=store,
            base_bytes=base_bytes,
        )
        self._method = None
        self._store = None
        self._block_cache.clear()

    def get_object(self, object_id: int) -> StoredObject:
        if object_id not in self._objects:
            raise WorkloadError(f"no object with id {object_id}")
        return self._objects[object_id]

    def with_access_method(self, access_method: str) -> "ObjectDatabase":
        """A database over the *same* stored objects with another method.

        Shares the object table and columnar store (both immutable once
        built); only the index differs.  Used by benchmarks and
        experiments to compare access methods on identical data.
        """
        clone = ObjectDatabase.from_objects(
            self._objects.values(),
            encoding=self._encoding,
            access_method=access_method,
            spatial_dims=self._spatial_dims,
        )
        clone._store = self._store
        return clone

    @classmethod
    def from_objects(
        cls,
        objects: "Iterable[StoredObject]",
        *,
        encoding: EncodingModel = DEFAULT_ENCODING,
        access_method: str = "packed",
        spatial_dims: int = 2,
    ) -> "ObjectDatabase":
        """A database over already-stored objects, sharing their stores.

        The objects are registered in iteration order (which fixes the
        concatenated store's row order) without re-running any
        decomposition work; this is how shard slices and access-method
        clones are built.
        """
        db = cls(
            encoding=encoding,
            access_method=access_method,
            spatial_dims=spatial_dims,
        )
        for obj in objects:
            if obj.object_id in db._objects:
                raise WorkloadError(
                    f"object id {obj.object_id} already stored"
                )
            db._objects[obj.object_id] = obj
        return db

    @property
    def store(self) -> CoefficientStore:
        """The database-level columnar store (lazy concatenation)."""
        if self._store is None:
            self._store = CoefficientStore.concat(
                obj.store for obj in self._objects.values()
            )
        return self._store

    def displacement(self, uid: tuple[int, int, int]) -> np.ndarray:
        """Raw payload vector of a record (detail displacement / base position)."""
        try:
            row = self.store.row_for_uid(uid)
        except StoreError as exc:
            raise WorkloadError(f"unknown record uid {uid}") from exc
        return np.asarray(self.store.payloads[row], dtype=float)

    @property
    def total_bytes(self) -> int:
        """Full-resolution dataset size (the paper's 20-80 MB axis)."""
        return sum(obj.total_bytes for obj in self._objects.values())

    @property
    def record_count(self) -> int:
        return sum(len(obj.store) for obj in self._objects.values())

    def all_records(self) -> list[CoefficientRecord]:
        out: list[CoefficientRecord] = []
        for obj in self._objects.values():
            out.extend(obj.records)
        return out

    # -- the access method ---------------------------------------------------------

    @property
    def access_method(self) -> AnyAccessMethod:
        """The (lazily built) spatial access method over all records."""
        if self._method is None:
            if not self._objects:
                raise WorkloadError("cannot index an empty database")
            if self._method_name == "packed":
                self._method = PackedAccessMethod(
                    self.store, spatial_dims=self._spatial_dims
                )
            elif self._method_name == "columnar":
                self._method = ColumnarAccessMethod(
                    self.store, spatial_dims=self._spatial_dims
                )
            elif self._method_name == "motion_aware":
                self._method = MotionAwareAccessMethod(
                    self.all_records(), spatial_dims=self._spatial_dims
                )
            else:
                self._method = NaivePointAccessMethod(
                    self.all_records(), spatial_dims=self._spatial_dims
                )
        return self._method

    def packed_access_method(
        self,
    ) -> PackedAccessMethod | DynamicAccessMethod | None:
        """The live packed index, or None when this database has none.

        The server's frame-delta planner keys its memos off this hook
        instead of :attr:`access_method` so alternative backends (a
        sharded database has *many* packed indexes, none global) can
        opt out without forcing an index build.  A scene database
        returns its epoch-stepping dynamic index, which exposes the
        same traversal surface.
        """
        if self._method_name != "packed" or not self._objects:
            return None
        method = self.access_method
        assert isinstance(method, (PackedAccessMethod, DynamicAccessMethod))
        return method

    # -- the epoch surface ---------------------------------------------------------

    @property
    def current_epoch(self) -> int:
        """The scene version queries run against by default.

        A static database only ever has one version, epoch 0; the
        epoch-versioned :class:`~repro.server.scene.SceneDatabase`
        overrides this with its live epoch.
        """
        return 0

    def store_at(self, epoch: int) -> CoefficientStore:
        """The consistent columnar view as of ``epoch``."""
        if epoch != 0:
            raise WorkloadError(
                f"static database has only epoch 0, not {epoch}"
            )
        return self.store

    def query_region_rows_at(
        self, epoch: int, region: Box, w_min: float, w_max: float
    ) -> RowResult:
        """The window query answered as of ``epoch``.

        Row ids index into :meth:`store_at` for the same epoch, *not*
        into the live :attr:`store`.
        """
        if epoch != 0:
            raise WorkloadError(
                f"static database has only epoch 0, not {epoch}"
            )
        return self.query_region_rows(region, w_min, w_max)

    def advance_epoch(self, delta: SceneDelta) -> FootprintDelta:
        """Apply one scene delta (scene databases only)."""
        raise WorkloadError(
            "a static ObjectDatabase cannot advance epochs; build a "
            "SceneDatabase for dynamic scenes"
        )

    def query_region(
        self, region: Box, w_min: float, w_max: float
    ) -> AccessResult:
        """Multi-resolution window query against the access method."""
        return self.access_method.query(region, w_min, w_max)

    def query_region_rows(
        self, region: Box, w_min: float, w_max: float
    ) -> RowResult:
        """The same window query returning row ids into :attr:`store`.

        For the columnar method this is one vector pass.  For the tree
        methods the traversal runs as before and the hits are mapped to
        rows, so result sets (and I/O accounting) are unchanged -- only
        the downstream merge/filter work becomes vectorised.
        """
        method = self.access_method
        if isinstance(
            method,
            (ColumnarAccessMethod, PackedAccessMethod, DynamicAccessMethod),
        ):
            return method.query_rows(region, w_min, w_max)
        result = method.query(region, w_min, w_max)
        if result.records:
            keys = np.fromiter(
                (
                    pack_uid(r.object_id, r.key.level, r.key.index)
                    for r in result.records
                ),
                dtype=np.int64,
                count=len(result.records),
            )
            rows = self.store.rows_for_packed(keys)
        else:
            rows = np.empty(0, dtype=np.int64)
        return RowResult(rows=rows, io=result.io)

    # -- block interface for the buffer layer ------------------------------------------

    def block_rows(self, grid: Grid, cell: CellId, w_min: float) -> np.ndarray:
        """Row ids of one buffer block: all records answering the cell.

        Memoised per (cell, resolution) because the buffer managers ask
        repeatedly; the query runs without I/O side effects on the
        cached path.
        """
        key = (cell, round(w_min, 6), id(grid))
        if key in self._block_cache:
            return self._block_cache[key]
        rows = self.query_region_rows(grid.cell_box(cell), w_min, 1.0).rows
        self._block_cache[key] = rows
        return rows

    def block_bytes(self, grid: Grid, cell: CellId, w_min: float) -> int:
        """Wire size of one buffer block, by column reduction."""
        return self.store.payload_bytes(self.block_rows(grid, cell, w_min))

    def block_bytes_fn(self, grid: Grid):
        """A ``(cell, w_min) -> bytes`` callable bound to ``grid``."""

        def fn(cell: CellId, w_min: float) -> int:
            return self.block_bytes(grid, cell, w_min)

        return fn

    def block_rows_fn(self, grid: Grid):
        """A ``(cell, w_min) -> row ids`` callable bound to ``grid``."""

        def fn(cell: CellId, w_min: float) -> np.ndarray:
            return self.block_rows(grid, cell, w_min)

        return fn
