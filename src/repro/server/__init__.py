"""Server side: object database and query-processing front end."""

from repro.server.database import ACCESS_METHODS, ObjectDatabase, StoredObject
from repro.server.planner import FrontierPlanner, PlannerCounters
from repro.server.server import BlockQuote, Server

__all__ = [
    "ObjectDatabase",
    "StoredObject",
    "Server",
    "BlockQuote",
    "ACCESS_METHODS",
    "FrontierPlanner",
    "PlannerCounters",
]
