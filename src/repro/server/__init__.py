"""Server side: object database and query-processing front end."""

from repro.server.database import ObjectDatabase, StoredObject
from repro.server.server import Server

__all__ = ["ObjectDatabase", "StoredObject", "Server"]
