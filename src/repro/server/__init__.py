"""Server side: object database and query-processing front end."""

from repro.server.database import ACCESS_METHODS, ObjectDatabase, StoredObject
from repro.server.planner import FrontierPlanner, PlannerCounters
from repro.server.scene import DEFAULT_RETAINED_EPOCHS, SceneDatabase
from repro.server.server import BlockQuote, Server

__all__ = [
    "ObjectDatabase",
    "SceneDatabase",
    "DEFAULT_RETAINED_EPOCHS",
    "StoredObject",
    "Server",
    "BlockQuote",
    "ACCESS_METHODS",
    "FrontierPlanner",
    "PlannerCounters",
]
