"""The epoch-versioned server database.

:class:`SceneDatabase` is an :class:`~repro.server.database.ObjectDatabase`
whose contents may change after it is built.  Construction works like
the static database (``add_object`` per object); the first query *seals*
the scene: the concatenated columnar store becomes epoch 0 of a
:class:`~repro.store.scene.SceneStore` and the index becomes the
incrementally patchable
:class:`~repro.index.dynamic.DynamicAccessMethod`.  From then on the
only mutation is :meth:`advance_epoch`, which applies one
:class:`~repro.store.scene.SceneDelta`, patches the index in place, and
returns the :class:`~repro.store.scene.FootprintDelta` the cache layers
above consume.

As-of-epoch answering
---------------------

Every epoch step pins the new compilation as an
:class:`~repro.index.dynamic.EpochView` (the dynamic index compiles a
fresh :class:`~repro.index.packed.PackedIndex` per epoch rather than
mutating the previous one, so a pin is a couple of references, not a
copy).  The most recent ``retained_epochs`` views stay addressable:
:meth:`query_region_rows_at` answers a pinned epoch with *zero*
recompute, billing I/O against the same counter as live queries.  Row
ids returned for a pinned epoch index into :meth:`store_at` of that
epoch.

Objects that change after sealing register their new decomposition via
:meth:`register_epoch_object`, which returns the coefficient rows to
put in the delta; the object table keeps every incarnation's base mesh
so base shipping works for past epochs too.  Known limitation: a moved
object's *stored* base mesh stays at its original position -- the wire
payload columns (which the scene store does translate) are the
authoritative positions.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.errors import WorkloadError
from repro.geometry.box import Box
from repro.index.columnar import RowResult
from repro.index.dynamic import (
    DEFAULT_DRIFT_BUDGET,
    DynamicAccessMethod,
    EpochView,
)
from repro.index.rtree import DEFAULT_NODE_CAPACITY
from repro.server.database import AnyAccessMethod, ObjectDatabase, StoredObject
from repro.store.columns import CoefficientStore
from repro.store.scene import FootprintDelta, SceneDelta, SceneStore
from repro.wavelets.analysis import WaveletDecomposition
from repro.wavelets.encoding import DEFAULT_ENCODING, EncodingModel

__all__ = ["SceneDatabase", "DEFAULT_RETAINED_EPOCHS"]

#: How many epochs' pinned index views a scene database keeps by
#: default.  Store snapshots are retained for *every* epoch (they share
#: unchanged rows only logically, but are small); the pinned index
#: views bound what can be *queried* as-of-epoch.
DEFAULT_RETAINED_EPOCHS = 16


class SceneDatabase(ObjectDatabase):
    """An object database over an epoch-versioned scene.

    Parameters
    ----------
    retained_epochs:
        How many trailing epochs stay queryable through
        :meth:`query_region_rows_at`; older pins are evicted.
    max_entries / drift_budget:
        Forwarded to the dynamic index (node capacity; the fraction of
        occupied grid cells a patch may dirty before the index falls
        back to a full recompile).
    """

    def __init__(
        self,
        *,
        encoding: EncodingModel = DEFAULT_ENCODING,
        access_method: str = "packed",
        spatial_dims: int = 2,
        max_entries: int = DEFAULT_NODE_CAPACITY,
        drift_budget: float = DEFAULT_DRIFT_BUDGET,
        retained_epochs: int = DEFAULT_RETAINED_EPOCHS,
    ) -> None:
        if access_method != "packed":
            raise WorkloadError(
                "a scene database always indexes through the dynamic "
                f"packed index; access_method {access_method!r} is not "
                "supported"
            )
        if retained_epochs < 1:
            raise WorkloadError(
                f"retained_epochs must be >= 1, got {retained_epochs}"
            )
        super().__init__(
            encoding=encoding,
            access_method="packed",
            spatial_dims=spatial_dims,
        )
        self._max_entries = max_entries
        self._drift_budget = drift_budget
        self._retained_epochs = retained_epochs
        self._scene: SceneStore | None = None
        self._dynamic: DynamicAccessMethod | None = None
        # epoch -> pinned view, oldest first; bounded by retained_epochs.
        self._pinned: OrderedDict[int, EpochView] = OrderedDict()

    # -- sealing ------------------------------------------------------------

    @property
    def sealed(self) -> bool:
        """True once the scene store exists (no more ``add_object``)."""
        return self._scene is not None

    @property
    def scene(self) -> SceneStore:
        """The epoch chain; building it seals the database."""
        if self._scene is None:
            if not self._objects:
                raise WorkloadError("cannot version an empty database")
            self._scene = SceneStore(
                CoefficientStore.concat(
                    obj.store for obj in self._objects.values()
                )
            )
            self._store = self._scene.latest
        return self._scene

    @property
    def store(self) -> CoefficientStore:
        """The *current-epoch* columnar view (canonical uid order)."""
        return self.scene.latest

    def add_object(
        self, object_id: int, decomposition: WaveletDecomposition
    ) -> None:
        if self._scene is not None:
            raise WorkloadError(
                "the scene is sealed; changes go through advance_epoch "
                "(register_epoch_object + SceneDelta.add_rows)"
            )
        super().add_object(object_id, decomposition)

    def register_epoch_object(
        self, object_id: int, decomposition: WaveletDecomposition
    ) -> np.ndarray:
        """Stage an object incarnation for a delta; returns its rows.

        Registers the decomposition in the object table (replacing any
        previous incarnation, so base-mesh shipping serves the new
        mesh) without touching the scene: the caller puts the returned
        ``COEFF_DTYPE`` rows into a :class:`SceneDelta` -- ``add_rows``
        for a new object, ``remesh_rows`` for a replacement -- and
        applies it through :meth:`advance_epoch`.
        """
        store = decomposition.column_store(object_id, self._encoding)
        base_bytes = self._encoding.base_mesh_bytes(
            decomposition.base.vertex_count, decomposition.base.face_count
        )
        self._objects[object_id] = StoredObject(
            object_id=object_id,
            decomposition=decomposition,
            store=store,
            base_bytes=base_bytes,
        )
        return store.data.copy()

    # -- the access method --------------------------------------------------

    @property
    def access_method(self) -> AnyAccessMethod:
        """The (lazily built) dynamic packed index over the scene.

        The grid layout is fitted once, at build time, and reused for
        every later epoch -- index structure is a pure function of
        ``(row set, grid, max_entries)``, which is what makes the
        incrementally patched arrays bit-identical to a scratch build
        at any epoch.
        """
        if self._dynamic is None:
            self._dynamic = DynamicAccessMethod(
                self.store,
                spatial_dims=self._spatial_dims,
                max_entries=self._max_entries,
                drift_budget=self._drift_budget,
            )
            self._method = self._dynamic
            self._pin(self.scene.epoch)
        return self._dynamic

    def _pin(self, epoch: int) -> None:
        assert self._dynamic is not None
        self._pinned[epoch] = self._dynamic.pin()
        while len(self._pinned) > self._retained_epochs:
            self._pinned.popitem(last=False)

    @property
    def dynamic_index(self) -> DynamicAccessMethod:
        """The live dynamic index (building it if needed)."""
        method = self.access_method
        assert isinstance(method, DynamicAccessMethod)
        return method

    @property
    def pinned_epochs(self) -> tuple[int, ...]:
        """Epochs currently answerable as-of (ascending)."""
        return tuple(self._pinned)

    # -- the epoch surface --------------------------------------------------

    @property
    def current_epoch(self) -> int:
        return self._scene.epoch if self._scene is not None else 0

    def store_at(self, epoch: int) -> CoefficientStore:
        if not 0 <= epoch <= self.current_epoch:
            raise WorkloadError(
                f"epoch {epoch} outside recorded range "
                f"[0, {self.current_epoch}]"
            )
        return self.scene.at_epoch(epoch)

    def query_region_rows_at(
        self, epoch: int, region: Box, w_min: float, w_max: float
    ) -> RowResult:
        if epoch == self.current_epoch:
            return self.query_region_rows(region, w_min, w_max)
        if not 0 <= epoch < self.current_epoch:
            raise WorkloadError(
                f"epoch {epoch} outside recorded range "
                f"[0, {self.current_epoch}]"
            )
        view = self._pinned.get(epoch)
        if view is None:
            raise WorkloadError(
                f"epoch {epoch} is no longer retained (keeping the last "
                f"{self._retained_epochs})"
            )
        return view.query_rows(region, w_min, w_max)

    def advance_epoch(self, delta: SceneDelta) -> FootprintDelta:
        """Apply one delta: store, index, caches, pin -- one step.

        The dynamic index is patched in place (dirty grid cells only,
        falling back to a full recompile past the drift budget), the
        new compilation is pinned for as-of-epoch answering, and the
        block-row memo cache -- keyed by spatial cell, hence stale the
        moment geometry moves -- is dropped.
        """
        method = self.dynamic_index
        footprint = self.scene.apply(delta)
        method.apply(self.scene.latest, footprint)
        self._store = self.scene.latest
        self._pin(self.scene.epoch)
        self._block_cache.clear()
        return footprint
