"""Incremental frame-delta query planning over the packed index.

Continuous retrieval makes consecutive frames nearly identical: the
frame at ``t`` asks for ``N_t = Q_t - Q_{t-1}`` plus the band query
``(r_{t-1}, r_t]`` over the overlap ``O_t`` (Algorithm 1), so every
sub-query of frame ``t`` lands inside a slightly grown copy of frame
``t-1``'s window.  The server nevertheless re-traverses the index from
the root for each of them.  :class:`FrontierPlanner` exploits the
coherence: per client it memoises the *surviving leaf frontier* of one
generously inflated traversal -- the leaf entries (boxes + store rows)
intersecting the inflated window -- and answers any query *contained*
in the memo region with one vectorised re-test of those candidates
instead of a root-to-leaf descent.  A frame's several delta sub-queries
(difference rectangles, overlap band) all hit the same memo, so one
refresh amortises across the whole frame and across subsequent frames
until the viewer escapes the inflated region.

Soundness: a query box contained in the memo region can only match leaf
entries that intersect the memo region, i.e. memoised candidates; the
exact re-test then reproduces the cold traversal's row ids -- in the
same ascending leaf-slot order, since candidates are kept in slot
order.  When the viewer escapes the memo region (or has no memo yet)
the planner *refreshes*: one full traversal of the newly inflated
window, billed in full, whose survivors seed the next memo.

Accounting: warm answers bill one query plus one leaf read per distinct
leaf node among the memoised candidates (the pages the re-test touches)
-- internal levels are not re-read, which is precisely the saving.
Cold refreshes bill the whole inflated traversal.  The planner is
therefore *not* I/O-identical to cold traversal and stays opt-in
(``Server(plan_deltas=True)``); the paper-figure experiments keep the
cold path.

Implementation note: the packed traversal is dominated by numpy call
overhead on small per-level arrays, not by data volume, so the warm
path is written to touch numpy as few times as possible -- candidate
bounds are stored as per-axis contiguous columns and the re-test is a
chain of in-place 1-D predicates, with no ``Box`` construction at all.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, IndexError_
from repro.geometry.box import Box
from repro.index.columnar import RowResult
from repro.index.dynamic import DynamicAccessMethod
from repro.index.packed import PackedAccessMethod
from repro.store.scene import FootprintDelta

__all__ = ["FrontierPlanner", "PlannerCounters", "DEFAULT_MARGIN_FRAC"]

#: The access-method surface the planner traverses: the static packed
#: compilation or the epoch-stepping dynamic index (same query/candidate
#: contract, same stats counter).
PlannableMethod = PackedAccessMethod | DynamicAccessMethod

#: How far the memo region is inflated beyond the query, per spatial
#: axis, as a fraction of the query extent on that axis.  Half the
#: window per side covers several frames of viewer motion at the
#: paper's speeds before a refresh is needed.
DEFAULT_MARGIN_FRAC = 0.5

_LIFT = 1e12  # matches repro.index.access._spatial_query_box


@dataclass
class PlannerCounters:
    """How often the memo answered vs how often it was rebuilt."""

    warm: int = 0
    cold: int = 0

    @property
    def total(self) -> int:
        return self.warm + self.cold

    @property
    def hit_rate(self) -> float:
        return self.warm / self.total if self.total else 0.0


class _Memo:
    """One client's cached frontier.

    ``lows``/``highs`` hold the candidate entry bounds as per-axis
    contiguous columns (axis-of-arrays rather than array-of-boxes) so
    the warm re-test runs one 1-D comparison per axis bound.
    """

    __slots__ = ("low", "high", "lows", "highs", "rows", "leaf_node_count", "span")

    def __init__(
        self,
        low: np.ndarray,
        high: np.ndarray,
        lows: tuple[np.ndarray, ...],
        highs: tuple[np.ndarray, ...],
        rows: np.ndarray,
        leaf_node_count: int,
        span: np.ndarray,
    ) -> None:
        self.low = low
        self.high = high
        self.lows = lows
        self.highs = highs
        self.rows = rows
        self.leaf_node_count = leaf_node_count
        self.span = span

    def __len__(self) -> int:
        return int(self.rows.size)


class FrontierPlanner:
    """Per-client frontier memos over one :class:`PackedAccessMethod`.

    Parameters
    ----------
    method:
        The packed access method queries run against.  The planner
        bills all I/O through ``method.stats`` so savings show up in
        the same counters the rest of the system reads.
    margin_frac:
        Memo inflation per spatial axis, as a fraction of the client's
        viewport span (the running maximum query extent -- see
        :meth:`_inflate`).  Zero memoises a span-sized window around
        the triggering query: still warm for identical repeats and
        same-frame sub-queries, refreshed on most motion.
    max_clients:
        Memo table bound; least recently served client is evicted.
    """

    def __init__(
        self,
        method: PlannableMethod,
        *,
        margin_frac: float = DEFAULT_MARGIN_FRAC,
        max_clients: int = 1024,
    ) -> None:
        if margin_frac < 0.0:
            raise ConfigurationError(
                f"margin_frac must be >= 0, got {margin_frac}"
            )
        if max_clients < 1:
            raise ConfigurationError(
                f"max_clients must be >= 1, got {max_clients}"
            )
        self._method = method
        self._margin_frac = float(margin_frac)
        self._max_clients = max_clients
        self._memos: OrderedDict[int, _Memo] = OrderedDict()
        self.counters = PlannerCounters()

    @property
    def method(self) -> PlannableMethod:
        return self._method

    @property
    def margin_frac(self) -> float:
        return self._margin_frac

    @property
    def client_count(self) -> int:
        return len(self._memos)

    def forget(self, client_id: int) -> None:
        """Drop one client's memo (viewer reset / disconnect)."""
        self._memos.pop(client_id, None)

    def clear(self) -> None:
        """Drop every memo (e.g. after the index was rebuilt)."""
        self._memos.clear()

    def apply_epoch(
        self,
        footprint: FootprintDelta,
        old_uids: np.ndarray,
        new_uids: np.ndarray,
    ) -> int:
        """Invalidate memos for an epoch step; returns how many dropped.

        A memo whose region intersects any dirty footprint (the union
        of a changed object's bounds before and after the epoch) may
        hold rows of a changed object, so it is dropped -- its client
        refreshes cold on the next query.  A memo that misses every
        dirty region can only hold *unchanged* objects' entries: a
        changed object's row could enter the memo only by its old
        support box intersecting the memo region, and that box lies
        inside the object's dirty footprint.  Such memos survive with
        their candidate bounds intact; only their store row ids are
        re-based from the old epoch's row space to the new one (both
        epochs order rows by ascending packed uid, so the re-base is
        one ``searchsorted`` per memo).
        """
        if footprint.is_empty and old_uids.size == new_uids.size:
            return 0
        dropped = 0
        rebase = not (
            old_uids.size == new_uids.size
            and bool(np.array_equal(old_uids, new_uids))
        )
        spatial = self._method.spatial_dims
        for client_id in list(self._memos):
            memo = self._memos[client_id]
            hit = footprint.intersects(
                memo.low[None, :spatial], memo.high[None, :spatial]
            )
            if bool(hit[0]):
                del self._memos[client_id]
                dropped += 1
                continue
            if rebase and memo.rows.size:
                pos = np.searchsorted(new_uids, old_uids[memo.rows])
                if (
                    int(pos.max(initial=0)) >= new_uids.size
                    or not bool(
                        np.array_equal(new_uids[pos], old_uids[memo.rows])
                    )
                ):
                    raise IndexError_(
                        "planner memo survived an epoch step but its rows "
                        "are not present in the new store"
                    )
                memo.rows = pos
        return dropped

    # -- planning --------------------------------------------------------------

    def _query_bounds(
        self, region: Box, w_min: float, w_max: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Index-space corners of ``Q(region, band)``, without a Box.

        Mirrors :meth:`PackedAccessMethod.query_box` (spatial project /
        lift plus band augmentation) but skips Box construction and
        validation on the hot path.
        """
        if not 0.0 <= w_min <= w_max <= 1.0:
            raise IndexError_(
                f"invalid value band [{w_min}, {w_max}]; need 0 <= min <= max <= 1"
            )
        spatial = self._method.spatial_dims
        qlow = np.empty(spatial + 1)
        qhigh = np.empty(spatial + 1)
        if region.ndim == spatial:
            qlow[:spatial] = region.low
            qhigh[:spatial] = region.high
        elif region.ndim == 3 and spatial == 2:
            qlow[:2] = region.low[:2]
            qhigh[:2] = region.high[:2]
        elif region.ndim == 2 and spatial == 3:
            qlow[:2] = region.low
            qhigh[:2] = region.high
            qlow[2] = -_LIFT
            qhigh[2] = _LIFT
        else:
            raise IndexError_(
                f"query region is {region.ndim}-D but the index is {spatial}-D"
            )
        qlow[spatial] = w_min
        qhigh[spatial] = w_max
        return qlow, qhigh

    def _inflate(
        self, qlow: np.ndarray, qhigh: np.ndarray, span: np.ndarray
    ) -> Box:
        """The memo region: the triggering query's centre grown to the
        client's viewport span plus margins, with the full ``[0, 1]``
        band.

        Sizing off ``span`` -- the running per-axis maximum of the
        client's query extents -- rather than the triggering query
        matters because Algorithm 1's sub-queries include *thin*
        difference rectangles: inflating a 3-px strip by a fraction of
        its own width would build a sliver memo that the very next
        sub-query escapes, thrashing the cache.  The span keeps every
        refresh viewport-sized no matter which sub-query triggered it.

        The last axis is the resolution value ``w``; memoising the full
        band keeps band queries (``(r_{t-1}, r_t]`` over the overlap)
        warm no matter how resolution demands move.
        """
        centre = 0.5 * (qlow[:-1] + qhigh[:-1])
        half = (0.5 + self._margin_frac) * span
        low = qlow.copy()
        high = qhigh.copy()
        low[:-1] = centre - half
        high[:-1] = centre + half
        low[-1] = 0.0
        high[-1] = 1.0
        return Box(low, high)

    def query_rows(
        self,
        client_id: int,
        region: Box,
        w_min: float,
        w_max: float,
        *,
        half_open: bool = False,
    ) -> RowResult:
        """Answer ``Q(region, w_min, w_max)`` from the frontier memo.

        Row ids and their order are identical to
        :meth:`PackedAccessMethod.query_rows`; only the I/O billed
        differs on warm frames (see module docstring).
        """
        method = self._method
        qlow, qhigh = self._query_bounds(region, w_min, w_max)
        memo = self._memos.get(client_id)
        stats = method.stats
        stats.push()
        if (
            memo is not None
            and bool(np.all(memo.low <= qlow))
            and bool(np.all(memo.high >= qhigh))
        ):
            self._memos.move_to_end(client_id)
            self.counters.warm += 1
            stats.record_query()
            if len(memo):
                stats.record_level(
                    nodes=memo.leaf_node_count,
                    entries=len(memo),
                    is_leaf=True,
                )
            rows = self._retest(memo, qlow, qhigh, half_open)
        else:
            self.counters.cold += 1
            memo = self._refresh(client_id, qlow, qhigh)
            rows = self._retest(memo, qlow, qhigh, half_open)
        io = stats.pop_delta()
        return RowResult(rows=rows, io=io)

    def _retest(
        self,
        memo: _Memo,
        qlow: np.ndarray,
        qhigh: np.ndarray,
        half_open: bool,
    ) -> np.ndarray:
        """Exact answer for the query bounds from the memo's superset.

        Leaf entries on the value axis are points (``low == high ==
        store.values[row]``), so a half-open band ``[w_min, w_max)`` is
        one strict comparison on the last axis instead of the access
        method's post-query trim -- no extra gather of ``store.values``.
        """
        if not len(memo):
            return np.empty(0, dtype=np.int64)
        mask = memo.lows[0] <= qhigh[0]
        mask &= memo.highs[0] >= qlow[0]
        last = len(memo.lows) - 1
        for axis in range(1, last):
            mask &= memo.lows[axis] <= qhigh[axis]
            mask &= memo.highs[axis] >= qlow[axis]
        if half_open:
            mask &= memo.lows[last] < qhigh[last]
        else:
            mask &= memo.lows[last] <= qhigh[last]
        mask &= memo.highs[last] >= qlow[last]
        return memo.rows[mask]

    def _refresh(
        self, client_id: int, qlow: np.ndarray, qhigh: np.ndarray
    ) -> _Memo:
        """Traverse the inflated window and memoise its survivors."""
        previous = self._memos.get(client_id)
        extent = qhigh[:-1] - qlow[:-1]
        span = extent if previous is None else np.maximum(previous.span, extent)
        inflated = self._inflate(qlow, qhigh, span)
        candidates = self._method.candidates(inflated)
        if len(candidates):
            lows = tuple(
                np.ascontiguousarray(candidates.low[:, a])
                for a in range(candidates.low.shape[1])
            )
            highs = tuple(
                np.ascontiguousarray(candidates.high[:, a])
                for a in range(candidates.high.shape[1])
            )
        else:
            empty = np.empty(0)
            lows = highs = tuple(empty for _ in range(qlow.size))
        leaf_nodes = candidates.leaf_nodes  # nondecreasing (slot order)
        leaf_node_count = (
            1 + int(np.count_nonzero(np.diff(leaf_nodes))) if leaf_nodes.size else 0
        )
        memo = _Memo(
            low=np.asarray(inflated.low, dtype=float),
            high=np.asarray(inflated.high, dtype=float),
            lows=lows,
            highs=highs,
            rows=candidates.rows,
            leaf_node_count=leaf_node_count,
            span=span,
        )
        if client_id in self._memos:
            del self._memos[client_id]
        while len(self._memos) >= self._max_clients:
            self._memos.popitem(last=False)
        self._memos[client_id] = memo
        return memo
