"""Deterministic discrete-event simulation kernel.

The substrate the serving stack runs on:

* :mod:`repro.sim.kernel` -- a priority-queue event loop over
  :class:`~repro.net.simclock.SimClock`, events totally ordered by
  ``(time, seq)``, no wall clock, no hidden randomness;
* :mod:`repro.sim.resources` -- shared serialising resources (the
  server uplink) whose backlog carries across ticks;
* :mod:`repro.sim.session` -- the unified :class:`ClientSession` drive
  loop composed from pluggable policy and transport objects;
* :mod:`repro.sim.streams` -- seeded random-stream derivation;
* :mod:`repro.sim.epochs` -- periodic scene-epoch advances as kernel
  events, so dynamic scenes mutate deterministically mid-tour.

Layering: ``sim`` sits below ``core`` (which implements the concrete
motion-aware/naive/fleet policies) and above ``net`` (whose clock and
link models it consumes).
"""

from repro.sim.epochs import ApplyDelta, DeltaFactory, EpochEvent, EpochSource
from repro.sim.kernel import Action, EventKernel, TraceEntry
from repro.sim.resources import FifoResource, Grant
from repro.sim.session import (
    ClientSession,
    LinkTransport,
    SessionPolicy,
    SessionResult,
    TickPlan,
    TransferOutcome,
    Transport,
    run_tour,
)
from repro.sim.streams import (
    BACKOFF_STREAM,
    LINK_FAULTS_STREAM,
    LINK_LOSS_STREAM,
    derive_rng,
)

__all__ = [
    "Action",
    "EventKernel",
    "TraceEntry",
    "ApplyDelta",
    "DeltaFactory",
    "EpochEvent",
    "EpochSource",
    "FifoResource",
    "Grant",
    "ClientSession",
    "LinkTransport",
    "SessionPolicy",
    "SessionResult",
    "TickPlan",
    "TransferOutcome",
    "Transport",
    "run_tour",
    "derive_rng",
    "LINK_FAULTS_STREAM",
    "LINK_LOSS_STREAM",
    "BACKOFF_STREAM",
]
