"""Deterministic discrete-event kernel.

The kernel is a priority-queue event loop over a
:class:`~repro.net.simclock.SimClock`.  Events are totally ordered by
``(time, seq)`` where ``seq`` is the monotonically increasing schedule
order, so two events scheduled for the same instant always fire in the
order they were scheduled -- there is no hidden tie-breaking and no wall
clock anywhere.  Randomness never lives in the kernel: components that
need it receive seeded generators (see :mod:`repro.sim.streams`), which
makes a whole simulation a pure function of its configuration.

An event's action is a callable taking the kernel; actions may schedule
further events (at or after the current time) and advance nothing
themselves -- the clock only moves when the loop pops the next event.
With ``record_trace=True`` the kernel keeps a tuple-trace of every
fired event, which the determinism tests compare bit for bit across
reruns.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable

from repro.errors import SimulationError
from repro.net.simclock import SimClock

__all__ = ["EventKernel", "TraceEntry", "Action"]

#: An event body: receives the kernel so it can read the clock and
#: schedule follow-up events.
Action = Callable[["EventKernel"], None]


@dataclass(frozen=True)
class TraceEntry:
    """One fired event, as recorded by ``record_trace=True``."""

    time: float
    seq: int
    label: str


class EventKernel:
    """A deterministic ``(time, seq)``-ordered event loop.

    Parameters
    ----------
    start:
        Initial simulated time (seconds).
    record_trace:
        Keep a :class:`TraceEntry` per fired event.  Off by default --
        large fleets fire tens of thousands of events.
    """

    def __init__(self, *, start: float = 0.0, record_trace: bool = False) -> None:
        self._clock = SimClock(start=start)
        self._heap: list[tuple[float, int, str, Action]] = []
        self._seq = 0
        self._processed = 0
        self._trace: list[TraceEntry] | None = [] if record_trace else None

    # -- clock -----------------------------------------------------------------------

    @property
    def clock(self) -> SimClock:
        """The clock the kernel advances (shared with components)."""
        return self._clock

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._clock.now

    # -- introspection ---------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Events scheduled but not yet fired."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Events fired so far."""
        return self._processed

    @property
    def trace(self) -> tuple[TraceEntry, ...]:
        """The fired-event trace (empty unless ``record_trace=True``)."""
        return tuple(self._trace) if self._trace is not None else ()

    # -- scheduling ------------------------------------------------------------------

    def schedule_at(self, when: float, action: Action, *, label: str = "") -> int:
        """Schedule ``action`` at absolute time ``when``; returns its seq.

        Scheduling strictly before ``now`` is a programming error: a
        discrete-event simulation cannot rewrite its past.
        """
        if when < self._clock.now:
            raise SimulationError(
                f"cannot schedule event at {when}: clock is at {self._clock.now}"
            )
        seq = self._seq
        self._seq += 1
        heapq.heappush(self._heap, (float(when), seq, label, action))
        return seq

    def schedule_in(self, delay: float, action: Action, *, label: str = "") -> int:
        """Schedule ``action`` ``delay`` seconds from now; returns its seq."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s into the past")
        return self.schedule_at(self._clock.now + delay, action, label=label)

    # -- the loop --------------------------------------------------------------------

    def step(self) -> bool:
        """Fire the next event; False when the queue is empty."""
        if not self._heap:
            return False
        when, seq, label, action = heapq.heappop(self._heap)
        self._clock.advance_to(when)
        if self._trace is not None:
            self._trace.append(TraceEntry(time=when, seq=seq, label=label))
        self._processed += 1
        action(self)
        return True

    def run(self, *, until: float | None = None, max_events: int | None = None) -> int:
        """Drain the queue; returns how many events fired.

        ``until`` stops before firing any event scheduled strictly after
        that time (the event stays queued).  ``max_events`` bounds the
        number of events fired by this call -- a backstop against
        accidental infinite self-scheduling.
        """
        fired = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            if max_events is not None and fired >= max_events:
                break
            self.step()
            fired += 1
        return fired

    def __repr__(self) -> str:
        return (
            f"EventKernel(now={self._clock.now:.3f}, pending={self.pending}, "
            f"processed={self._processed})"
        )
