"""Epoch-advance event source for the discrete-event kernel.

A dynamic scene changes *while* clients tour it.  :class:`EpochSource`
turns a schedule of :class:`~repro.store.scene.SceneDelta` mutations
into kernel events interleaved deterministically with the session
ticks: epoch ``k`` fires at ``start_s + k * period_s`` (kernel event
ordering breaks ties by schedule order, so a tick and an epoch landing
on the same instant always resolve the same way), applies its delta
through the injected ``apply`` callable -- typically
``Server.advance_epoch`` or a sharded coordinator's -- and records the
resulting :class:`~repro.store.scene.FootprintDelta`.

The source owns no randomness and no scene policy: the ``next_delta``
factory produces the ``k``-th delta (or ``None`` to stop early), so a
whole dynamic run stays a pure function of its configuration, exactly
like every other kernel component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import SimulationError
from repro.sim.kernel import EventKernel
from repro.store.scene import FootprintDelta, SceneDelta

__all__ = ["EpochEvent", "EpochSource", "DeltaFactory", "ApplyDelta"]

#: Produces the ``k``-th scene delta (``k`` counts from 0, i.e. the
#: delta advancing the scene to epoch ``k + 1``); ``None`` stops the
#: source early.
DeltaFactory = Callable[[int], "SceneDelta | None"]

#: Applies one delta to the system under test, returning its footprint
#: (``Server.advance_epoch``, ``SceneDatabase.advance_epoch``, ...).
ApplyDelta = Callable[[SceneDelta], FootprintDelta]


@dataclass(frozen=True)
class EpochEvent:
    """One fired epoch advance, for traces and assertions."""

    time: float
    epoch: int
    changed: int


class EpochSource:
    """Schedules periodic scene-epoch advances on an event kernel.

    Parameters
    ----------
    apply:
        Receives each delta; its returned footprint is recorded.
    next_delta:
        Factory for the ``k``-th delta; returning ``None`` ends the
        schedule before ``max_epochs``.
    period_s:
        Simulated seconds between consecutive epoch advances.
    start_s:
        Absolute time of the first advance (defaults to one period
        after the kernel's clock when :meth:`attach` runs).
    max_epochs:
        Hard bound on fired advances.
    """

    def __init__(
        self,
        apply: ApplyDelta,
        next_delta: DeltaFactory,
        *,
        period_s: float,
        start_s: float | None = None,
        max_epochs: int | None = None,
    ) -> None:
        if period_s <= 0:
            raise SimulationError(
                f"epoch period must be positive, got {period_s}"
            )
        if max_epochs is not None and max_epochs < 0:
            raise SimulationError(
                f"max_epochs must be >= 0, got {max_epochs}"
            )
        self._apply = apply
        self._next_delta = next_delta
        self._period_s = float(period_s)
        self._start_s = start_s
        self._max_epochs = max_epochs
        self._events: list[EpochEvent] = []
        self._footprints: list[FootprintDelta] = []
        self._attached = False

    @property
    def fired(self) -> int:
        """Epoch advances applied so far."""
        return len(self._events)

    @property
    def events(self) -> tuple[EpochEvent, ...]:
        return tuple(self._events)

    @property
    def footprints(self) -> tuple[FootprintDelta, ...]:
        """The footprint returned by ``apply`` for each fired epoch."""
        return tuple(self._footprints)

    def attach(self, kernel: EventKernel) -> None:
        """Schedule the first advance; later ones self-schedule."""
        if self._attached:
            raise SimulationError("epoch source is already attached")
        self._attached = True
        if self._max_epochs == 0:
            return
        when = (
            kernel.now + self._period_s
            if self._start_s is None
            else self._start_s
        )
        kernel.schedule_at(when, self._fire, label="epoch:1")

    def _fire(self, kernel: EventKernel) -> None:
        delta = self._next_delta(self.fired)
        if delta is None:
            return
        footprint = self._apply(delta)
        self._events.append(
            EpochEvent(
                time=kernel.now,
                epoch=footprint.epoch,
                changed=int(footprint.changed_ids.size),
            )
        )
        self._footprints.append(footprint)
        if self._max_epochs is not None and self.fired >= self._max_epochs:
            return
        kernel.schedule_in(
            self._period_s, self._fire, label=f"epoch:{self.fired + 1}"
        )
