"""The unified client session: one drive loop, pluggable policies.

Before this module existed the repo had three near-duplicate lock-step
loops (``MotionAwareSystem.run``, ``NaiveSystem.run`` and the fleet
loop).  They all share one skeleton per tick:

1. decide the resolution threshold ``w_min`` (speed mapping, possibly
   raised by a degradation controller);
2. *plan* the tick -- consult the cache/buffer strategy, price the
   demanded payload and the server I/O it costs;
3. if anything is missing, push the demand through a transport (and,
   in a fleet, through the shared server-uplink FIFO);
4. *commit* the plan on success (integrate data, account prefetch) or
   *abort* it on failure (roll back phantom blocks, degrade);
5. record the tick's response time.

:class:`ClientSession` owns that skeleton exactly once.  What differs
between the motion-aware stack, the naive stack and fleet clients is
captured by a :class:`SessionPolicy` (steps 1, 2 and 4) and a
:class:`Transport` (step 3); the concrete policies live in
:mod:`repro.core.sessions`, above this layer -- the session engine only
sees the protocols.

Response-time model: a contacted tick costs ``uplink queueing delay +
transport exchange time + demanded server I/O``.  Prefetch payloads are
shipped in the background -- they hold the shared uplink for their
serialisation time (delaying *later* transfers) and count toward total
bytes, but never toward the tick's own response time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol

from repro.motion.trajectory import Trajectory
from repro.net.link import WirelessLink
from repro.errors import LinkExchangeError, SimulationError
from repro.sim.kernel import Action, EventKernel
from repro.sim.resources import FifoResource

__all__ = [
    "SessionResult",
    "TickPlan",
    "TransferOutcome",
    "Transport",
    "LinkTransport",
    "SessionPolicy",
    "ClientSession",
    "run_tour",
]


@dataclass
class SessionResult:
    """Aggregates of one client session (one tour through one system).

    Fault-path counters: ``timeouts`` (requests abandoned past the
    timeout budget), ``retries`` (exchange-level retries issued),
    ``degraded_ticks`` (ticks spent inside a degradation window),
    ``stale_served_ticks`` (ticks rendered from the buffer because the
    demand transfer failed), ``records_shipped`` (coefficient records
    delivered over the wire -- equals the number of *distinct* records
    when the no-reship invariant holds).  ``w_min_trace`` records the
    effective per-tick resolution threshold and ``failure_ticks`` the
    tick indices of failed demand transfers.
    """

    ticks: int = 0
    contacts: int = 0
    total_response_s: float = 0.0
    max_response_s: float = 0.0
    demand_bytes: int = 0
    prefetch_bytes: int = 0
    io_node_reads: int = 0
    responses: list[float] = field(default_factory=list)
    timeouts: int = 0
    retries: int = 0
    degraded_ticks: int = 0
    stale_served_ticks: int = 0
    records_shipped: int = 0
    w_min_trace: list[float] = field(default_factory=list)
    failure_ticks: list[int] = field(default_factory=list)

    @property
    def avg_response_s(self) -> float:
        return self.total_response_s / self.ticks if self.ticks else 0.0

    def steady_avg_response_s(self, warmup_ticks: int = 10) -> float:
        """Average response time excluding the cold-start ticks.

        Both systems pay a one-off initial fetch when the tour starts;
        on short scaled-down tours that cold start can dominate the
        plain average, so the steady-state figure drops the first
        ``warmup_ticks`` ticks.
        """
        tail = self.responses[warmup_ticks:]
        return sum(tail) / len(tail) if tail else 0.0

    @property
    def total_bytes(self) -> int:
        return self.demand_bytes + self.prefetch_bytes

    def note(self, response_s: float, contacted: bool) -> None:
        self.ticks += 1
        self.total_response_s += response_s
        self.max_response_s = max(self.max_response_s, response_s)
        self.responses.append(response_s)
        if contacted:
            self.contacts += 1


@dataclass(frozen=True)
class TickPlan:
    """What one planned tick demands from the wire and the disks.

    ``response_io_reads`` is the I/O charged to *this tick's* response
    time (demanded data, index traversal); I/O spent on background
    prefetch is accounted by the policy's ``commit`` instead.
    ``state`` is opaque policy data threaded through to
    ``commit``/``abort``.
    """

    contacted: bool
    demand_payload_bytes: int = 0
    response_io_reads: int = 0
    state: Any = None


class TransferOutcome(Protocol):
    """What a transport reports for one request."""

    @property
    def ok(self) -> bool: ...

    @property
    def elapsed_s(self) -> float: ...

    @property
    def retries(self) -> int: ...

    @property
    def timed_out(self) -> bool: ...


class Transport(Protocol):
    """Moves one demand payload; never raises, always bills its time."""

    def request(
        self, payload_bytes: int, *, speed: float = 0.0, now: float = 0.0
    ) -> TransferOutcome: ...


@dataclass(frozen=True)
class _Outcome:
    ok: bool
    elapsed_s: float
    retries: int = 0
    timed_out: bool = False


class LinkTransport:
    """A bare :class:`WirelessLink` as a :class:`Transport`.

    No retries beyond the link's own retransmission budget: an exchange
    that exhausts ``max_attempts`` becomes a failed outcome carrying the
    wasted time (fleet clients without a resilience wrapper).
    """

    def __init__(self, link: WirelessLink) -> None:
        self._link = link

    @property
    def link(self) -> WirelessLink:
        return self._link

    def request(
        self, payload_bytes: int, *, speed: float = 0.0, now: float = 0.0
    ) -> TransferOutcome:
        try:
            elapsed = self._link.exchange(payload_bytes, speed=speed, now=now)
        except LinkExchangeError as exc:
            return _Outcome(ok=False, elapsed_s=exc.elapsed_s)
        return _Outcome(ok=True, elapsed_s=elapsed)


class SessionPolicy(Protocol):
    """The pluggable three-quarters of a client: resolution mapping,
    buffer/cache strategy and degradation behaviour.

    Implementations live above this layer (:mod:`repro.core.sessions`);
    the engine only calls the four hooks below, in tick order.
    """

    def resolution(self, now: float, speed: float) -> tuple[float, bool]:
        """The effective ``w_min`` at ``now`` and whether it is degraded."""
        ...

    def plan(
        self, index: int, now: float, position: Any, speed: float, w_min: float
    ) -> TickPlan:
        """Plan one tick; may mutate client-side caches optimistically."""
        ...

    def commit(
        self, plan: TickPlan, outcome: TransferOutcome, result: SessionResult
    ) -> int:
        """The demand transfer arrived: integrate and account.

        Returns the *prefetch* payload shipped alongside (0 when the
        policy does not prefetch); the session charges it to the shared
        uplink but not to the response time.
        """
        ...

    def abort(
        self,
        plan: TickPlan,
        outcome: TransferOutcome,
        failed_at: float,
        result: SessionResult,
    ) -> None:
        """The demand transfer failed: roll back and degrade."""
        ...


class ClientSession:
    """One client driven tick by tick through the shared skeleton.

    Parameters
    ----------
    policy:
        Resolution/buffer/degradation behaviour (see
        :class:`SessionPolicy`).
    transport:
        Demand-path byte mover (resilient exchanger, bare link, ...).
    io_time_per_node_s:
        Server I/O cost charged per node read on the response path.
    uplink, uplink_bps:
        When set, every transfer additionally serialises through this
        shared FIFO at ``uplink_bps``: the demand's queueing delay is
        added to the response time, and committed prefetch bytes hold
        the link without affecting the response.
    """

    def __init__(
        self,
        policy: SessionPolicy,
        transport: Transport,
        *,
        io_time_per_node_s: float = 0.0,
        uplink: FifoResource | None = None,
        uplink_bps: float = 0.0,
        result: SessionResult | None = None,
    ) -> None:
        if io_time_per_node_s < 0:
            raise SimulationError("io time must be non-negative")
        if uplink is not None and uplink_bps <= 0:
            raise SimulationError("a shared uplink needs a positive uplink_bps")
        self._policy = policy
        self._transport = transport
        self._io_time = io_time_per_node_s
        self._uplink = uplink
        self._uplink_bps = uplink_bps
        self.result = result if result is not None else SessionResult()

    @property
    def policy(self) -> SessionPolicy:
        return self._policy

    @property
    def transport(self) -> Transport:
        return self._transport

    def _serialisation_s(self, payload_bytes: int) -> float:
        return payload_bytes * 8.0 / self._uplink_bps

    def tick(self, index: int, now: float, position: Any, speed: float) -> float:
        """Run one tick at simulated time ``now``; returns its response time."""
        result = self.result
        w_min, degraded = self._policy.resolution(now, speed)
        if degraded:
            result.degraded_ticks += 1
        result.w_min_trace.append(w_min)
        plan = self._policy.plan(index, now, position, speed, w_min)
        response_s = 0.0
        if plan.contacted:
            queued_s = 0.0
            if self._uplink is not None:
                grant = self._uplink.acquire(
                    now, self._serialisation_s(plan.demand_payload_bytes)
                )
                queued_s = grant.queued_s
            outcome = self._transport.request(
                plan.demand_payload_bytes, speed=speed, now=now
            )
            result.retries += outcome.retries
            response_s = (
                queued_s
                + outcome.elapsed_s
                + plan.response_io_reads * self._io_time
            )
            if outcome.ok:
                prefetch_bytes = self._policy.commit(plan, outcome, result)
                if self._uplink is not None and prefetch_bytes > 0:
                    # Background traffic: holds the bottleneck, delays
                    # later transfers, charges nothing to this tick.
                    self._uplink.acquire(now, self._serialisation_s(prefetch_bytes))
            else:
                result.stale_served_ticks += 1
                result.failure_ticks.append(index)
                if outcome.timed_out:
                    result.timeouts += 1
                self._policy.abort(plan, outcome, now + outcome.elapsed_s, result)
        result.note(response_s, plan.contacted)
        return response_s


def run_tour(
    session: ClientSession,
    tour: Trajectory,
    *,
    kernel: EventKernel | None = None,
) -> SessionResult:
    """Drive one session through a tour on the event kernel.

    Tick ``i`` fires at ``max(end of tick i-1, tour.times[i])`` -- the
    client samples its next query frame as soon as both the tour reaches
    the timestamp and the previous response has been delivered, which is
    exactly the timing of the legacy lock-step loops.
    """
    if kernel is None:
        kernel = EventKernel(start=float(tour.times[0]))

    def tick_action(i: int) -> Action:
        def fire(k: EventKernel) -> None:
            response_s = session.tick(
                i, k.now, tour.positions[i], tour.nominal_speed
            )
            if i + 1 < len(tour):
                k.schedule_at(
                    max(k.now + response_s, float(tour.times[i + 1])),
                    tick_action(i + 1),
                    label=f"tick:{i + 1}",
                )

        return fire

    kernel.schedule_at(float(tour.times[0]), tick_action(0), label="tick:0")
    kernel.run()
    return session.result
