"""Shared serialising resources (the server uplink bottleneck).

A :class:`FifoResource` models a single-server FIFO queue in the style
of the wireless-walkthrough frameworks: a transfer *holds* the resource
for its serialisation time, and a transfer arriving while the resource
is busy starts when the backlog drains.  Crucially the backlog is
**carried state** -- it does not reset between simulation ticks, so a
saturating burst of traffic delays requests that arrive much later,
which is exactly the queueing behaviour lock-step fleet loops get
wrong.

The resource performs no event scheduling itself: ``acquire`` is a pure
state update returning the grant window, which keeps it usable both
inside kernel event actions and in closed-form tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError

__all__ = ["FifoResource", "Grant"]


@dataclass(frozen=True)
class Grant:
    """One admitted hold on a FIFO resource.

    ``queued_s`` is how long the request waited behind the backlog
    before its hold started (``start_s - arrival``).
    """

    start_s: float
    finish_s: float
    hold_s: float
    queued_s: float


class FifoResource:
    """A serialising resource whose backlog carries across time.

    ``acquire(now, hold_s)`` admits a request arriving at ``now`` that
    needs the resource for ``hold_s`` seconds: it starts when the
    current backlog drains (``max(busy_until, now)``) and pushes the
    backlog out by its own hold.  Accounting (grants, busy seconds,
    worst queueing delay) is accumulated for fleet-level reporting.
    """

    def __init__(self, name: str = "resource") -> None:
        self.name = name
        self._busy_until = 0.0
        self._grants = 0
        self._busy_s = 0.0
        self._max_queued_s = 0.0

    @property
    def busy_until(self) -> float:
        """Absolute time the current backlog drains."""
        return self._busy_until

    @property
    def grants(self) -> int:
        """Requests admitted so far."""
        return self._grants

    @property
    def busy_s(self) -> float:
        """Total seconds of granted hold time."""
        return self._busy_s

    @property
    def max_queued_s(self) -> float:
        """Worst queueing delay any request has seen."""
        return self._max_queued_s

    def backlog_s(self, now: float) -> float:
        """Seconds a request arriving at ``now`` would wait."""
        return max(self._busy_until - now, 0.0)

    def acquire(self, now: float, hold_s: float) -> Grant:
        """Admit a request at ``now`` holding the resource ``hold_s``."""
        if now < 0:
            raise SimulationError(f"arrival time must be non-negative, got {now}")
        if hold_s < 0:
            raise SimulationError(f"hold time must be non-negative, got {hold_s}")
        start = max(self._busy_until, now)
        finish = start + hold_s
        queued = start - now
        self._busy_until = finish
        self._grants += 1
        self._busy_s += hold_s
        if queued > self._max_queued_s:
            self._max_queued_s = queued
        return Grant(start_s=start, finish_s=finish, hold_s=hold_s, queued_s=queued)

    def reset(self) -> None:
        """Drop all backlog and accounting."""
        self._busy_until = 0.0
        self._grants = 0
        self._busy_s = 0.0
        self._max_queued_s = 0.0

    def __repr__(self) -> str:
        return (
            f"FifoResource({self.name!r}, busy_until={self._busy_until:.3f}, "
            f"grants={self._grants})"
        )
