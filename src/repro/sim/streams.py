"""Seeded random-stream derivation for simulated components.

Every random stream in a simulation must be (a) injected, never global,
and (b) derived from the run's seed plus a stable integer key path, so
adding a client or reordering construction cannot silently shift
another component's draws.  ``derive_rng(seed, client_id, role)``
mirrors the derivation :meth:`repro.core.system.SystemConfig.build_link`
established: ``numpy`` seed sequences accept an integer list, and
distinct key paths yield statistically independent streams.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "derive_rng",
    "LINK_FAULTS_STREAM",
    "LINK_LOSS_STREAM",
    "BACKOFF_STREAM",
    "FLEET_TOUR_STREAM",
]

#: Conventional role ids for the per-client link stack, shared by
#: :class:`~repro.core.system.SystemConfig` and the fleet so a client
#: behaves identically whether it runs alone or in a fleet.
LINK_FAULTS_STREAM = 1
LINK_LOSS_STREAM = 2
BACKOFF_STREAM = 3
#: Whole-fleet tour synthesis (:func:`repro.core.fleet.make_flat_ticks`):
#: one stream for the entire fleet's tours, drawn client-major so a
#: bigger fleet extends -- never reshuffles -- a smaller one's tours.
FLEET_TOUR_STREAM = 4


def derive_rng(*key: int) -> np.random.Generator:
    """A generator for the integer key path ``key`` (e.g. seed, client, role)."""
    return np.random.default_rng(list(key))
