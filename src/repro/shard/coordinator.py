"""The scatter-gather query coordinator.

:class:`ShardCoordinator` is a :class:`~repro.server.server.Server`
whose fetch stage runs against a :class:`ShardedDatabase`.  The gather
stage -- half-open band filter, no-reship filter, first-occurrence uid
merge, base-mesh shipping -- is inherited untouched, so responses are
bit-identical to an unsharded server over the same objects (both paths
deliver each sub-query in the canonical ascending packed-uid order).

What the coordinator adds over a plain ``Server(sharded_db)``:

* :meth:`execute_many` plans *every* sub-query of *every* request,
  groups them by shard, and scatters **one batched task per shard**.
  Each shard then answers its whole batch in a single shared frontier
  walk (:meth:`~repro.index.packed.PackedAccessMethod.query_rows_many`)
  -- and with a :class:`~repro.shard.parallel.ProcessShardExecutor`
  those per-shard batches run in separate processes.  Batching is what
  makes scattering pay: the per-level numpy overhead is amortised over
  the batch instead of paid per sub-query.
* Frame-delta planning becomes shard-aware: one
  :class:`~repro.server.planner.FrontierPlanner` per shard, keyed off
  the shard's own packed index, with per-client memos per shard.
  ``reset_client`` forgets the client in every shard's planner.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import ShardError
from repro.geometry.box import Box
from repro.index.columnar import RowResult
from repro.net.messages import (
    LATEST_EPOCH,
    RetrieveBatchResponse,
    RetrieveRequest,
)
from repro.server.planner import FrontierPlanner
from repro.server.server import DEFAULT_MAX_CLIENTS, Server
from repro.shard.database import ShardedDatabase
from repro.shard.parallel import ShardTask
from repro.store.columns import CoefficientStore
from repro.store.scene import FootprintDelta

__all__ = ["ShardCoordinator"]


class ShardCoordinator(Server):
    """Server front end scattering fetches over a sharded database."""

    def __init__(
        self,
        database: ShardedDatabase,
        *,
        max_clients: int = DEFAULT_MAX_CLIENTS,
        plan_deltas: bool = False,
    ) -> None:
        if not isinstance(database, ShardedDatabase):
            raise ShardError(
                "ShardCoordinator requires a ShardedDatabase; wrap a plain "
                "database with ShardedDatabase.from_database first"
            )
        super().__init__(
            database, max_clients=max_clients, plan_deltas=plan_deltas
        )
        self._shard_planners: dict[int, FrontierPlanner] = {}

    @property
    def sharded(self) -> ShardedDatabase:
        db = self._db
        assert isinstance(db, ShardedDatabase)
        return db

    # -- shard-aware frame-delta planning --------------------------------------

    def _shard_planner(self, shard: int) -> FrontierPlanner:
        planner = self._shard_planners.get(shard)
        if planner is None:
            method = self.sharded.slices[shard].db.packed_access_method()
            if method is None:
                raise ShardError(f"shard {shard} has no packed index")
            planner = FrontierPlanner(method, max_clients=self.max_clients)
            self._shard_planners[shard] = planner
        return planner

    @property
    def shard_planners(self) -> dict[int, FrontierPlanner]:
        """Live per-shard planners (built lazily; counters for tests)."""
        return self._shard_planners

    def _client_evicted(self, client_id: int) -> None:
        """Resets *and* LRU evictions drop the shard-level memos too."""
        super()._client_evicted(client_id)
        for planner in self._shard_planners.values():
            planner.forget(client_id)

    def _on_epoch(
        self,
        footprint: FootprintDelta,
        old_store: CoefficientStore | None,
        new_store: CoefficientStore,
    ) -> None:
        """Epoch invalidation runs per shard, on the shard's row space.

        Each shard planner sees only the footprint restricted to its
        member objects and re-bases surviving memos against the shard's
        own slice stores -- memos in shards the delta never touched
        survive verbatim.
        """
        super()._on_epoch(footprint, old_store, new_store)
        db = self.sharded
        for shard, planner in self._shard_planners.items():
            planner.apply_epoch(
                footprint.restricted(db.member_ids(shard)),
                *db.slice_uid_step(shard),
            )

    def _region_rows(
        self,
        client_id: int,
        region: Box,
        w_min: float,
        w_max: float,
        *,
        epoch: int | None = None,
    ) -> RowResult:
        if epoch is not None and epoch != self._db.current_epoch:
            # Pinned past epochs bypass both the scatter and the shard
            # planners: the epoch-capable sharded database answers them
            # from its retained global views.
            return super()._region_rows(
                client_id, region, w_min, w_max, epoch=epoch
            )
        if not self._plan_deltas:
            # The sharded database itself scatters; canonicalisation in
            # _canonical is a no-op on its already-sorted gather.
            return super()._region_rows(client_id, region, w_min, w_max)
        db = self.sharded
        parts: list[RowResult] = []
        for shard in db.plan(region, w_min, w_max):
            shard = int(shard)
            result = self._shard_planner(shard).query_rows(
                client_id, region, w_min, w_max
            )
            parts.append(
                RowResult(
                    rows=db.slices[shard].row_map[result.rows], io=result.io
                )
            )
        return self._canonical(db.gather_rows(parts))

    # -- batched scatter-gather ------------------------------------------------

    def execute_many(
        self, requests: Iterable[RetrieveRequest]
    ) -> list[RetrieveBatchResponse]:
        """Answer a request batch with one scattered task per shard.

        Falls back to the serial per-request loop under frame-delta
        planning (memos are per-client warm state, not batchable).
        Responses come back in request order and match a serial
        :meth:`execute_batch` loop bit for bit.
        """
        requests = list(requests)
        current = self._db.current_epoch
        pinned = any(
            request.epoch not in (LATEST_EPOCH, current)
            for request in requests
        )
        if self._plan_deltas or pinned or len(requests) == 0:
            # Frame-delta memos are per-client warm state and pinned
            # epochs answer from retained views, neither batchable.
            return super().execute_many(requests)
        db = self.sharded
        # Flatten every (request, region) sub-query, then plan the
        # whole batch in one broadcast intersection test.
        flat: list[tuple[Box, float, float]] = []
        bounds: list[int] = [0]
        for request in requests:
            for region_req in request.regions:
                flat.append(
                    (region_req.region, region_req.w_min, region_req.w_max)
                )
            bounds.append(len(flat))
        per_shard: dict[int, list[int]] = {}
        for sub_idx, shards in enumerate(db.plan_many(flat)):
            for shard in shards:
                per_shard.setdefault(int(shard), []).append(sub_idx)
        assignments = [
            sub_indices for _, sub_indices in sorted(per_shard.items())
        ]
        tasks = [
            ShardTask(
                shard=shard,
                subqueries=tuple(flat[sub_idx] for sub_idx in sub_indices),
            )
            for shard, sub_indices in sorted(per_shard.items())
        ]
        batches = db.executor.run(tasks)
        # Gather per sub-query (ascending shard order via the sorted
        # task order), then run the response stage in request order so
        # state mutation matches the serial loop exactly.
        fetched = db.assemble(assignments, batches, len(flat))
        return [
            self.gather_batch(
                request, fetched[bounds[req_idx] : bounds[req_idx + 1]]
            )
            for req_idx, request in enumerate(requests)
        ]
