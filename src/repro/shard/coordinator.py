"""The scatter-gather query coordinator.

:class:`ShardCoordinator` is a :class:`~repro.server.server.Server`
whose fetch stage runs against a :class:`ShardedDatabase`.  The gather
stage -- half-open band filter, no-reship filter, first-occurrence uid
merge, base-mesh shipping -- is inherited untouched, so responses are
bit-identical to an unsharded server over the same objects (both paths
deliver each sub-query in the canonical ascending packed-uid order).

What the coordinator adds over a plain ``Server(sharded_db)``:

* :meth:`execute_many` plans *every* sub-query of *every* request,
  groups them by shard, and scatters **one batched task per shard**.
  Each shard then answers its whole batch in a single shared frontier
  walk (:meth:`~repro.index.packed.PackedAccessMethod.query_rows_many`)
  -- and with a :class:`~repro.shard.parallel.ProcessShardExecutor`
  those per-shard batches run in separate processes.  Batching is what
  makes scattering pay: the per-level numpy overhead is amortised over
  the batch instead of paid per sub-query.
* Frame-delta planning becomes shard-aware: one
  :class:`~repro.server.planner.FrontierPlanner` per shard, keyed off
  the shard's own packed index, with per-client memos per shard.
  ``reset_client`` forgets the client in every shard's planner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.fleet import FleetTick
from repro.errors import ShardError
from repro.geometry.box import Box
from repro.index.columnar import RowResult
from repro.net.messages import (
    LATEST_EPOCH,
    RetrieveBatchResponse,
    RetrieveRequest,
)
from repro.server.planner import FrontierPlanner
from repro.server.server import DEFAULT_MAX_CLIENTS, Server
from repro.shard.database import ShardedDatabase
from repro.shard.parallel import AnyShardTask, ShardCornerTask, ShardTask
from repro.store.columns import CoefficientStore
from repro.store.scene import FootprintDelta

__all__ = ["ShardCoordinator", "FleetShipping", "FleetTickResult"]


class FleetShipping:
    """Vectorised shipped-bases state for whole-fleet ticks.

    The server's per-client shipped-base sets are an LRU table of
    Python sets -- correct, but 100k dictionary touches per tick would
    dominate an otherwise fully vectorised fleet path.  This is the
    same state as one boolean ``(clients, objects)`` matrix: cell
    ``[c, o]`` says client ``c`` has object ``o``'s base mesh, and a
    whole tick's worth of first-sightings flips in one fancy-indexed
    assignment.  Unlike the server table it never evicts, so it matches
    the per-request path exactly whenever the fleet fits the server's
    ``max_clients`` (the parity tests pin this).
    """

    def __init__(
        self,
        client_count: int,
        object_ids: np.ndarray,
        base_bytes: np.ndarray,
    ) -> None:
        if client_count < 1:
            raise ShardError(
                f"shipping table needs >= 1 client, got {client_count}"
            )
        self._object_ids = np.asarray(object_ids, dtype=np.int64)
        if self._object_ids.size == 0 or np.unique(
            self._object_ids
        ).size != self._object_ids.size or bool(
            (np.diff(self._object_ids) <= 0).any()
        ):
            raise ShardError(
                "shipping table needs strictly ascending unique object ids"
            )
        self.base_bytes = np.asarray(base_bytes, dtype=np.int64)
        if self.base_bytes.shape != self._object_ids.shape:
            raise ShardError("one base-mesh byte size per object required")
        self.shipped = np.zeros(
            (client_count, self._object_ids.size), dtype=bool
        )

    @property
    def client_count(self) -> int:
        return int(self.shipped.shape[0])

    @property
    def object_count(self) -> int:
        return int(self._object_ids.size)

    def object_index(self, object_ids: np.ndarray) -> np.ndarray:
        """Dense column indices of (known) object ids."""
        idx = np.searchsorted(self._object_ids, object_ids)
        if bool((idx >= self._object_ids.size).any()) or not np.array_equal(
            self._object_ids[idx], object_ids
        ):
            raise ShardError("shipping table asked about unknown object ids")
        return idx


@dataclass(frozen=True)
class FleetTickResult:
    """One whole-fleet tick's responses, kept columnar end to end.

    Client ``i`` of the tick owns ``rows[offsets[i]:offsets[i + 1]]``
    (global store rows in the canonical ascending packed-uid order --
    the exact row sequence its
    :class:`~repro.net.messages.RetrieveBatchResponse` batch would
    carry), shipped ``payload_bytes[i]`` (coefficient payload plus
    first-shipped base-mesh connectivity, matching
    ``RetrieveBatchResponse.payload_bytes``), billed
    ``io[i] = (node_reads, leaf_reads, entries_scanned)`` over
    ``consulted[i]`` shards, and received ``new_base_counts[i]`` base
    meshes it had not seen before.
    """

    rows: np.ndarray
    offsets: np.ndarray
    io: np.ndarray
    consulted: np.ndarray
    payload_bytes: np.ndarray
    new_base_counts: np.ndarray

    @property
    def client_count(self) -> int:
        return int(self.offsets.size - 1)

    @property
    def total_rows(self) -> int:
        return int(self.rows.size)

    @property
    def total_payload_bytes(self) -> int:
        return int(self.payload_bytes.sum())


class ShardCoordinator(Server):
    """Server front end scattering fetches over a sharded database."""

    def __init__(
        self,
        database: ShardedDatabase,
        *,
        max_clients: int = DEFAULT_MAX_CLIENTS,
        plan_deltas: bool = False,
    ) -> None:
        if not isinstance(database, ShardedDatabase):
            raise ShardError(
                "ShardCoordinator requires a ShardedDatabase; wrap a plain "
                "database with ShardedDatabase.from_database first"
            )
        super().__init__(
            database, max_clients=max_clients, plan_deltas=plan_deltas
        )
        self._shard_planners: dict[int, FrontierPlanner] = {}

    @property
    def sharded(self) -> ShardedDatabase:
        db = self._db
        assert isinstance(db, ShardedDatabase)
        return db

    # -- shard-aware frame-delta planning --------------------------------------

    def _shard_planner(self, shard: int) -> FrontierPlanner:
        planner = self._shard_planners.get(shard)
        if planner is None:
            method = self.sharded.slices[shard].db.packed_access_method()
            if method is None:
                raise ShardError(f"shard {shard} has no packed index")
            planner = FrontierPlanner(method, max_clients=self.max_clients)
            self._shard_planners[shard] = planner
        return planner

    @property
    def shard_planners(self) -> dict[int, FrontierPlanner]:
        """Live per-shard planners (built lazily; counters for tests)."""
        return self._shard_planners

    def _client_evicted(self, client_id: int) -> None:
        """Resets *and* LRU evictions drop the shard-level memos too."""
        super()._client_evicted(client_id)
        for planner in self._shard_planners.values():
            planner.forget(client_id)

    def _on_epoch(
        self,
        footprint: FootprintDelta,
        old_store: CoefficientStore | None,
        new_store: CoefficientStore,
    ) -> None:
        """Epoch invalidation runs per shard, on the shard's row space.

        Each shard planner sees only the footprint restricted to its
        member objects and re-bases surviving memos against the shard's
        own slice stores -- memos in shards the delta never touched
        survive verbatim.
        """
        super()._on_epoch(footprint, old_store, new_store)
        db = self.sharded
        for shard, planner in self._shard_planners.items():
            planner.apply_epoch(
                footprint.restricted(db.member_ids(shard)),
                *db.slice_uid_step(shard),
            )

    def _region_rows(
        self,
        client_id: int,
        region: Box,
        w_min: float,
        w_max: float,
        *,
        epoch: int | None = None,
    ) -> RowResult:
        if epoch is not None and epoch != self._db.current_epoch:
            # Pinned past epochs bypass both the scatter and the shard
            # planners: the epoch-capable sharded database answers them
            # from its retained global views.
            return super()._region_rows(
                client_id, region, w_min, w_max, epoch=epoch
            )
        if not self._plan_deltas:
            # The sharded database itself scatters; canonicalisation in
            # _canonical is a no-op on its already-sorted gather.
            return super()._region_rows(client_id, region, w_min, w_max)
        db = self.sharded
        parts: list[RowResult] = []
        for shard in db.plan(region, w_min, w_max):
            shard = int(shard)
            result = self._shard_planner(shard).query_rows(
                client_id, region, w_min, w_max
            )
            parts.append(
                RowResult(
                    rows=db.slices[shard].row_map[result.rows], io=result.io
                )
            )
        return self._canonical(db.gather_rows(parts))

    # -- batched scatter-gather ------------------------------------------------

    def execute_many(
        self, requests: Iterable[RetrieveRequest]
    ) -> list[RetrieveBatchResponse]:
        """Answer a request batch with one scattered task per shard.

        Falls back to the serial per-request loop under frame-delta
        planning (memos are per-client warm state, not batchable).
        Responses come back in request order and match a serial
        :meth:`execute_batch` loop bit for bit.
        """
        requests = list(requests)
        current = self._db.current_epoch
        pinned = any(
            request.epoch not in (LATEST_EPOCH, current)
            for request in requests
        )
        if self._plan_deltas or pinned or len(requests) == 0:
            # Frame-delta memos are per-client warm state and pinned
            # epochs answer from retained views, neither batchable.
            return super().execute_many(requests)
        db = self.sharded
        # Flatten every (request, region) sub-query, then plan the
        # whole batch in one broadcast intersection test.
        flat: list[tuple[Box, float, float]] = []
        bounds: list[int] = [0]
        for request in requests:
            for region_req in request.regions:
                flat.append(
                    (region_req.region, region_req.w_min, region_req.w_max)
                )
            bounds.append(len(flat))
        per_shard: dict[int, list[int]] = {}
        for sub_idx, shards in enumerate(db.plan_many(flat)):
            for shard in shards:
                per_shard.setdefault(int(shard), []).append(sub_idx)
        assignments = [
            sub_indices for _, sub_indices in sorted(per_shard.items())
        ]
        tasks = [
            ShardTask(
                shard=shard,
                subqueries=tuple(flat[sub_idx] for sub_idx in sub_indices),
            )
            for shard, sub_indices in sorted(per_shard.items())
        ]
        batches = db.executor.run(tasks)
        # Gather per sub-query (ascending shard order via the sorted
        # task order), then run the response stage in request order so
        # state mutation matches the serial loop exactly.
        fetched = db.assemble(assignments, batches, len(flat))
        return [
            self.gather_batch(
                request, fetched[bounds[req_idx] : bounds[req_idx + 1]]
            )
            for req_idx, request in enumerate(requests)
        ]

    # -- whole-fleet batched planning ------------------------------------------

    def fleet_shipping(self, client_count: int) -> FleetShipping:
        """A fresh shipped-bases table over this database's objects."""
        object_ids = np.sort(
            np.fromiter(
                (obj.object_id for obj in self._db.objects),
                dtype=np.int64,
                count=self._db.object_count,
            )
        )
        base_bytes = np.fromiter(
            (
                max(self._base_connectivity_bytes(int(oid)), 1)
                for oid in object_ids
            ),
            dtype=np.int64,
            count=object_ids.size,
        )
        return FleetShipping(client_count, object_ids, base_bytes)

    def execute_fleet_tick(
        self, tick: FleetTick, shipping: FleetShipping
    ) -> FleetTickResult:
        """Answer an entire flat-drive tick as one scatter-gather.

        The fleet-scale sibling of :meth:`execute_many`: one
        :meth:`~repro.shard.database.ShardedDatabase.plan_corners`
        broadcast plans every client's query at once, one
        :class:`~repro.shard.parallel.ShardCornerTask` per shard
        scatters the whole tick, and the response stage (payload
        pricing, first-shipment base-mesh accounting) runs as numpy
        reductions over the flat gather.  Per client, the rows, their
        order, the I/O counters and the payload bytes are identical to
        an :meth:`execute_many` pass over :meth:`FleetTick.to_requests`
        -- with base shipments tracked in ``shipping`` (build one via
        :meth:`fleet_shipping`) instead of the server's LRU table.

        Not available under frame-delta planning (per-client memos are
        not batchable); ticks always run at the current epoch.
        """
        if self._plan_deltas:
            raise ShardError(
                "execute_fleet_tick needs cold planning; frame-delta memos "
                "are per-client warm state"
            )
        db = self.sharded
        count = tick.count
        if count == 0:
            empty = np.empty(0, dtype=np.int64)
            return FleetTickResult(
                rows=empty,
                offsets=np.zeros(1, dtype=np.int64),
                io=np.zeros((0, 3), dtype=np.int64),
                consulted=empty,
                payload_bytes=empty,
                new_base_counts=empty,
            )
        if bool((tick.client_ids < 0).any()) or bool(
            (tick.client_ids >= shipping.client_count).any()
        ):
            raise ShardError(
                f"tick client ids must fall in [0, {shipping.client_count}) "
                "to index the shipping table"
            )
        sd = db.spatial_dims
        if tick.low.shape[1] != sd:
            raise ShardError(
                f"tick windows are {tick.low.shape[1]}-D, database expects "
                f"{sd}-D"
            )
        # Plan: one broadcast over pre-lowered (x, y[, z], w) corners.
        qlow = np.concatenate([tick.low, tick.w_min[:, None]], axis=1)
        qhigh = np.concatenate([tick.high, tick.w_max[:, None]], axis=1)
        hits = db.plan_corners(qlow, qhigh)
        # Scatter: one corner task per consulted shard, ascending.
        tasks: list[AnyShardTask] = []
        assignments: list[np.ndarray] = []
        for shard in range(db.shard_count):
            indices = np.flatnonzero(hits[:, shard])
            if indices.size:
                tasks.append(
                    ShardCornerTask(
                        shard=shard, qlow=qlow[indices], qhigh=qhigh[indices]
                    )
                )
                assignments.append(indices)
        batches = db.executor.run(tasks)
        gather = db.assemble_flat(assignments, batches, count)
        # Response stage, columnar.  Single closed-band region per
        # client with no excludes: nothing to filter, and rows are
        # already uid-unique per client (each store row occurs in
        # exactly one shard), so the first-occurrence merge is the
        # identity and payloads price straight off the size column.
        store = db.store
        rows = gather.rows
        per_client = np.diff(gather.offsets)
        qid = np.repeat(np.arange(count, dtype=np.int64), per_client)
        payload = np.bincount(
            qid, weights=store.sizes[rows], minlength=count
        ).astype(np.int64)
        # Base meshes: connectivity bytes for (client, object) pairs the
        # shipping table has not seen, committed in one assignment.
        base_mask = store.levels[rows] == -1
        base_qid = qid[base_mask]
        base_cols = shipping.object_index(store.object_ids[rows[base_mask]])
        pair_keys = np.unique(base_qid * shipping.object_count + base_cols)
        pair_qid = pair_keys // shipping.object_count
        pair_cols = pair_keys % shipping.object_count
        pair_clients = tick.client_ids[pair_qid]
        fresh = ~shipping.shipped[pair_clients, pair_cols]
        new_qid = pair_qid[fresh]
        new_cols = pair_cols[fresh]
        payload += np.bincount(
            new_qid, weights=shipping.base_bytes[new_cols], minlength=count
        ).astype(np.int64)
        shipping.shipped[tick.client_ids[new_qid], new_cols] = True
        return FleetTickResult(
            rows=rows,
            offsets=gather.offsets,
            io=gather.io,
            consulted=gather.consulted,
            payload_bytes=payload,
            new_base_counts=np.bincount(new_qid, minlength=count).astype(
                np.int64
            ),
        )
