"""Zero-copy shared-memory data plane for the shard executors.

The fork-based :class:`~repro.shard.parallel.ProcessShardExecutor`
inherits the packed arrays copy-on-write, but it still pays a pickle
for every :class:`~repro.shard.parallel.ShardBatchResult` crossing the
pool boundary, and it cannot run at all where ``fork`` is unsafe.
This module replaces both sides of that boundary with named
:mod:`multiprocessing.shared_memory` segments:

* :class:`SharedArena` packs read-only numpy arrays -- the global
  :class:`~repro.store.columns.CoefficientStore` hot columns and every
  shard's compiled :class:`~repro.index.packed.PackedIndex` level
  arrays plus ``row_map`` -- into **one** named segment.  A picklable
  :class:`ArenaManifest` (segment name + per-array dtype/shape/offset)
  lets any process re-materialise zero-copy views with
  :func:`numpy.frombuffer`; nothing but the manifest is ever pickled.
* :class:`ResultRing` gives each worker a private named segment to
  write result payloads into.  A worker answers a task with a tiny
  :class:`ResultDescriptor` -- ``(slot, offset, row/query counts)`` --
  and the parent gathers ``rows``/``counts``/``io`` as views into the
  ring.  Array payloads cross the boundary with **zero pickling**; a
  task whose payload exceeds the ring capacity degrades to the pickled
  path (counted, never wrong).
* :class:`SharedMemoryShardExecutor` is a persistent **spawn** pool
  over both: workers attach the arena and claim a ring once, at
  startup, via the pool initializer -- no fork-inherited module
  globals, so the executor is safe on any start method and exercises
  identically under ``spawn`` CI legs.

Ownership is strictly parental: the parent creates every segment and
is the only process that ever calls ``unlink`` -- deterministically,
in :meth:`SharedMemoryShardExecutor.close` (idempotent, run from
``__exit__`` and on rebind).  Workers attach and immediately
unregister from their ``resource_tracker`` (3.11 tracks attachments
too, which would otherwise unlink parent-owned segments and warn at
worker exit).  A worker crash breaks the pool -- ``run`` raises
:class:`~repro.errors.ShardError` -- but the segments are parent-owned
and ``close`` still reclaims every one of them.

Results gathered over the ring are views: they stay valid until the
next :meth:`~SharedMemoryShardExecutor.run` call (which may recycle
ring space) or :meth:`~SharedMemoryShardExecutor.close`.  The
scatter-gather callers consume each batch before issuing the next, so
the window is never violated in practice; copy on extraction if a
result must outlive the executor.
"""

from __future__ import annotations

import itertools
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Mapping, Sequence

import numpy as np

from repro.errors import ShardError
from repro.index.packed import PackedIndex, PackedLevel, corners_query_batch
from repro.shard.parallel import (
    AnyShardTask,
    ShardBatchResult,
    ShardSlice,
    task_corners,
)

__all__ = [
    "ArenaManifest",
    "SharedArena",
    "ResultDescriptor",
    "ResultRing",
    "GatherStats",
    "SharedMemoryShardExecutor",
    "DEFAULT_RING_BYTES",
]

#: Per-worker result-ring capacity.  Large enough that a full-city
#: gather fits comfortably; overflow degrades to pickling, not failure.
DEFAULT_RING_BYTES = 64 * 1024 * 1024

#: Segment names are ``repro_<pid>_<counter>``; the counter de-collides
#: segments created by one process, the pid across processes.
_SEGMENT_COUNTER = itertools.count()

_ALIGN = 64


def _create_segment(size: int) -> shared_memory.SharedMemory:
    """Create a uniquely named segment (retrying name collisions)."""
    while True:
        name = f"repro_{os.getpid()}_{next(_SEGMENT_COUNTER)}"
        try:
            return shared_memory.SharedMemory(
                name=name, create=True, size=max(size, 1)
            )
        except FileExistsError:  # pragma: no cover - stale leak from a
            continue  # crashed unrelated process; try the next name


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting tracker ownership.

    Python 3.11 registers *attachments* with the resource tracker too
    (bpo-38119): a worker exiting would unlink -- or double-unregister
    and stderr-spam -- segments the parent still owns.  Only the
    creating side should ever be tracked, so registration is silenced
    for the duration of the attach.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original  # type: ignore[assignment]


def _close_segment(segment: shared_memory.SharedMemory) -> None:
    """Close a segment even while zero-copy views still pin its pages.

    ``SharedMemory.close`` refuses to unmap while a caller still holds
    ``np.frombuffer`` views into the buffer.  That is fine -- the pages
    are reclaimed when the last view dies -- but the file descriptor
    must not outlive the executor, so release it by hand, detach the
    mapping from the segment object (so its ``__del__`` cannot trip
    over the still-exported buffer), and leave the unmap to the views'
    lifetime.
    """
    try:
        segment.close()
    except BufferError:
        fd = getattr(segment, "_fd", -1)
        if isinstance(fd, int) and fd >= 0:
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - already closed
                pass
            segment._fd = -1  # type: ignore[attr-defined]
        segment._mmap = None  # type: ignore[attr-defined]
        segment._buf = None  # type: ignore[attr-defined]


@dataclass(frozen=True)
class _ArrayExtent:
    """Where one published array lives inside the arena segment."""

    dtype: str
    shape: tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class ArenaManifest:
    """Everything a process needs to map the arena: name + extents.

    The manifest is the *only* thing pickled to workers; the arrays
    themselves travel as the named segment behind it.
    """

    segment: str
    extents: tuple[tuple[str, _ArrayExtent], ...]

    @property
    def total_bytes(self) -> int:
        last = max(
            (e.offset + int(np.prod(e.shape, dtype=np.int64)) * np.dtype(e.dtype).itemsize
             for _, e in self.extents),
            default=0,
        )
        return last


class SharedArena:
    """Named read-only numpy arrays packed into one shm segment.

    Build with :meth:`publish` (the owning side) or :meth:`attach` (a
    worker).  Owners ``unlink`` on :meth:`close`; attachers only close
    their mapping.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        manifest: ArenaManifest,
        *,
        owner: bool,
    ) -> None:
        self._segment = segment
        self._manifest = manifest
        self._owner = owner
        self._closed = False

    @classmethod
    def publish(cls, arrays: Mapping[str, np.ndarray]) -> "SharedArena":
        """Copy ``arrays`` into a fresh segment, 64-byte aligned."""
        extents: list[tuple[str, _ArrayExtent]] = []
        offset = 0
        for key, array in arrays.items():
            array = np.ascontiguousarray(array)
            offset = -(-offset // _ALIGN) * _ALIGN
            extents.append(
                (key, _ArrayExtent(str(array.dtype), array.shape, offset))
            )
            offset += array.nbytes
        segment = _create_segment(offset)
        arena = cls(
            segment,
            ArenaManifest(segment=segment.name, extents=tuple(extents)),
            owner=True,
        )
        for key, array in arrays.items():
            view = arena._view(key, writable=True)
            view[...] = np.ascontiguousarray(array)
        return arena

    @classmethod
    def attach(cls, manifest: ArenaManifest) -> "SharedArena":
        return cls(_attach_segment(manifest.segment), manifest, owner=False)

    @property
    def manifest(self) -> ArenaManifest:
        return self._manifest

    @property
    def name(self) -> str:
        return self._manifest.segment

    def keys(self) -> tuple[str, ...]:
        return tuple(key for key, _ in self._manifest.extents)

    def _view(self, key: str, *, writable: bool = False) -> np.ndarray:
        if self._closed:
            raise ShardError("arena is closed")
        for name, extent in self._manifest.extents:
            if name == key:
                array = np.frombuffer(
                    self._segment.buf,
                    dtype=np.dtype(extent.dtype),
                    count=int(np.prod(extent.shape, dtype=np.int64)),
                    offset=extent.offset,
                ).reshape(extent.shape)
                if not writable:
                    array.setflags(write=False)
                return array
        raise ShardError(f"arena has no array {key!r}")

    def array(self, key: str) -> np.ndarray:
        """A zero-copy read-only view of one published array."""
        return self._view(key)

    def close(self) -> None:
        """Close the mapping; the owner also unlinks the segment."""
        if self._closed:
            return
        self._closed = True
        _close_segment(self._segment)
        if self._owner:
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


@dataclass(frozen=True)
class ResultDescriptor:
    """A gathered result's address: everything but the arrays.

    ``slot`` names the worker ring holding the payload; the parent
    reconstructs ``rows`` (``n_rows`` int64), ``counts`` and ``io``
    (``n_queries`` and ``(n_queries, 3)`` int64) as consecutive views
    starting at ``offset``.
    """

    shard: int
    slot: int
    offset: int
    n_rows: int
    n_queries: int


class ResultRing:
    """One worker's result segment: bump-allocated per gather batch.

    The writer resets its cursor whenever a new ``batch_id`` arrives;
    within a batch, consecutive tasks append.  The parent reads the
    descriptors of batch ``b`` strictly before issuing batch ``b + 1``
    (the executor's ``run`` is synchronous), so recycled space is never
    read after being overwritten.
    """

    def __init__(
        self, segment: shared_memory.SharedMemory, *, owner: bool
    ) -> None:
        self._segment = segment
        self._owner = owner
        self._closed = False
        self._cursor = 0
        self._batch_id = -1

    @classmethod
    def create(cls, ring_bytes: int) -> "ResultRing":
        return cls(_create_segment(ring_bytes), owner=True)

    @classmethod
    def attach(cls, name: str) -> "ResultRing":
        return cls(_attach_segment(name), owner=False)

    @property
    def name(self) -> str:
        return self._segment.name

    @property
    def capacity(self) -> int:
        return self._segment.size

    def write(
        self,
        batch_id: int,
        shard: int,
        slot: int,
        rows: np.ndarray,
        counts: np.ndarray,
        io: np.ndarray,
    ) -> ResultDescriptor | None:
        """Append one result; ``None`` when the batch outgrew the ring."""
        if self._batch_id != batch_id:
            self._batch_id = batch_id
            self._cursor = 0
        n_rows = int(rows.size)
        n_queries = int(counts.size)
        needed = 8 * (n_rows + n_queries + 3 * n_queries)
        offset = self._cursor
        if offset + needed > self.capacity:
            return None
        buf = self._segment.buf
        out_rows = np.frombuffer(buf, np.int64, count=n_rows, offset=offset)
        out_rows[...] = rows
        out_counts = np.frombuffer(
            buf, np.int64, count=n_queries, offset=offset + 8 * n_rows
        )
        out_counts[...] = counts
        out_io = np.frombuffer(
            buf,
            np.int64,
            count=3 * n_queries,
            offset=offset + 8 * (n_rows + n_queries),
        )
        out_io[...] = io.reshape(-1)
        self._cursor = offset + needed
        return ResultDescriptor(
            shard=shard,
            slot=slot,
            offset=offset,
            n_rows=n_rows,
            n_queries=n_queries,
        )

    def read(self, descriptor: ResultDescriptor) -> ShardBatchResult:
        """Materialise a descriptor as zero-copy read-only views."""
        buf = self._segment.buf
        rows = np.frombuffer(
            buf, np.int64, count=descriptor.n_rows, offset=descriptor.offset
        )
        counts = np.frombuffer(
            buf,
            np.int64,
            count=descriptor.n_queries,
            offset=descriptor.offset + 8 * descriptor.n_rows,
        )
        io = np.frombuffer(
            buf,
            np.int64,
            count=3 * descriptor.n_queries,
            offset=descriptor.offset + 8 * (descriptor.n_rows + descriptor.n_queries),
        ).reshape(descriptor.n_queries, 3)
        for array in (rows, counts, io):
            array.setflags(write=False)
        return ShardBatchResult(
            shard=descriptor.shard, rows=rows, counts=counts, io=io
        )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        _close_segment(self._segment)
        if self._owner:
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


@dataclass
class GatherStats:
    """Byte accounting of descriptor-path vs pickled-path gathers.

    ``shm_payload_bytes`` counts array payload shipped as ring views --
    exactly the bytes the fork executor would have pickled --
    ``pickled_payload_bytes`` counts payloads that overflowed a ring
    and fell back to pickling, and ``gathers`` counts ``run`` batches.
    """

    gathers: int = 0
    tasks: int = 0
    shm_payload_bytes: int = 0
    pickled_payload_bytes: int = 0
    fallback_tasks: int = 0

    @property
    def pickle_bytes_avoided(self) -> int:
        return self.shm_payload_bytes

    @property
    def pickle_bytes_avoided_per_gather(self) -> float:
        if not self.gathers:
            return 0.0
        return self.shm_payload_bytes / self.gathers

    def merged_into(self, other: "GatherStats") -> None:
        other.gathers += self.gathers
        other.tasks += self.tasks
        other.shm_payload_bytes += self.shm_payload_bytes
        other.pickled_payload_bytes += self.pickled_payload_bytes
        other.fallback_tasks += self.fallback_tasks


# -- worker side ---------------------------------------------------------------


@dataclass(frozen=True)
class _ShardIndexSpec:
    """Arena keys reassembling one shard's packed index + row map."""

    shard: int
    ndim: int
    spatial_dims: int
    levels: tuple[tuple[str, str, str], ...]  # (low, high, node_start) keys
    rows_key: str
    row_map_key: str


@dataclass(frozen=True)
class _WorkerConfig:
    """Everything a spawned worker needs, picklable."""

    manifest: ArenaManifest
    specs: tuple[_ShardIndexSpec, ...]
    ring_names: tuple[str, ...]


class _ShardEngine:
    """A shard's query engine rebuilt from arena views (no store, no tree)."""

    def __init__(
        self, arena: SharedArena, spec: _ShardIndexSpec
    ) -> None:
        levels = [
            PackedLevel(
                low=arena.array(low_key),
                high=arena.array(high_key),
                node_start=arena.array(start_key),
            )
            for low_key, high_key, start_key in spec.levels
        ]
        self.packed = PackedIndex(
            levels, arena.array(spec.rows_key), (), ndim=spec.ndim
        )
        self.row_map = arena.array(spec.row_map_key)
        self.spatial_dims = spec.spatial_dims

    def run(self, task: AnyShardTask) -> tuple[
        np.ndarray, np.ndarray, np.ndarray
    ]:
        """Global rows / per-query counts / per-query io for one task."""
        qlow, qhigh = task_corners(task, self.spatial_dims)
        rows, counts, io = corners_query_batch(self.packed, qlow, qhigh)
        return self.row_map[rows], counts, io


@dataclass
class _WorkerState:
    arena: SharedArena
    engines: dict[int, _ShardEngine]
    ring: ResultRing | None
    slot: int


_WORKER: _WorkerState | None = None


def _shm_worker_init(config: _WorkerConfig, slot_counter: Any) -> None:
    """Pool initializer: attach the arena and claim a result ring.

    Runs once per spawned worker.  Slots are claimed through a shared
    counter; a worker that cannot get a ring (more claims than rings
    after crashes repopulated the pool) still answers correctly over
    the pickled fallback path.
    """
    global _WORKER
    arena = SharedArena.attach(config.manifest)
    with slot_counter.get_lock():
        slot = int(slot_counter.value)
        slot_counter.value = slot + 1
    ring: ResultRing | None = None
    if 0 <= slot < len(config.ring_names):
        ring = ResultRing.attach(config.ring_names[slot])
    engines = {
        spec.shard: _ShardEngine(arena, spec) for spec in config.specs
    }
    _WORKER = _WorkerState(arena=arena, engines=engines, ring=ring, slot=slot)


@dataclass(frozen=True)
class _TaskEnvelope:
    batch_id: int
    task: AnyShardTask


@dataclass(frozen=True)
class _TaskAnswer:
    """Worker -> parent: a descriptor, or the pickled fallback result."""

    descriptor: ResultDescriptor | None
    fallback: ShardBatchResult | None
    payload_bytes: int


def _shm_run_task(envelope: _TaskEnvelope) -> _TaskAnswer:
    state = _WORKER
    if state is None:  # pragma: no cover - initializer always ran
        raise ShardError("shm worker was not initialised")
    task = envelope.task
    engine = state.engines.get(task.shard)
    if engine is None:
        raise ShardError(f"shm worker has no engine for shard {task.shard}")
    rows, counts, io = engine.run(task)
    payload_bytes = int(rows.nbytes + counts.nbytes + io.nbytes)
    if state.ring is not None:
        descriptor = state.ring.write(
            envelope.batch_id, task.shard, state.slot, rows, counts, io
        )
        if descriptor is not None:
            return _TaskAnswer(
                descriptor=descriptor, fallback=None, payload_bytes=payload_bytes
            )
    return _TaskAnswer(
        descriptor=None,
        fallback=ShardBatchResult(
            shard=task.shard, rows=rows, counts=counts, io=io
        ),
        payload_bytes=payload_bytes,
    )


# -- the executor --------------------------------------------------------------


class SharedMemoryShardExecutor:
    """Persistent spawn pool gathering results over shared memory.

    Parameters
    ----------
    processes:
        Pool size; defaults to ``min(shard_count, cpu_count)`` at bind
        time.
    ring_bytes:
        Per-worker result-ring capacity.  A task whose payload exceeds
        the remaining ring space falls back to pickling (counted in
        :attr:`stats`); results are never lost.
    """

    def __init__(
        self,
        processes: int | None = None,
        *,
        ring_bytes: int = DEFAULT_RING_BYTES,
    ) -> None:
        if processes is not None and processes < 1:
            raise ShardError(f"processes must be >= 1, got {processes}")
        if ring_bytes < 1024:
            raise ShardError(f"ring_bytes must be >= 1024, got {ring_bytes}")
        self._processes = processes
        self._ring_bytes = ring_bytes
        self._pool: ProcessPoolExecutor | None = None
        self._arena: SharedArena | None = None
        self._rings: tuple[ResultRing, ...] = ()
        self._batch_id = 0
        self._spatial_dims = 2
        #: Cumulative gather accounting since the last bind.
        self.stats = GatherStats()
        #: Accounting of the most recent ``run`` batch only.
        self.last_gather = GatherStats()

    @staticmethod
    def available() -> bool:
        """True when a spawn pool can run here (it always can)."""
        import multiprocessing

        return "spawn" in multiprocessing.get_all_start_methods()

    @property
    def workers(self) -> int:
        """Configured pool size (0 before bind / after close)."""
        if self._pool is None:
            return 0
        return self._pool._max_workers

    @property
    def arena(self) -> SharedArena | None:
        """The live arena (None before bind / after close)."""
        return self._arena

    @property
    def ring_names(self) -> tuple[str, ...]:
        return tuple(ring.name for ring in self._rings)

    # -- lifecycle ----------------------------------------------------------

    def bind(self, slices: Sequence[ShardSlice]) -> None:
        """Publish every shard's arrays and start the worker pool."""
        import multiprocessing

        self.close()
        bound = tuple(slices)
        if not bound:
            raise ShardError("cannot bind to zero shard slices")
        arrays: dict[str, np.ndarray] = {}
        specs: list[_ShardIndexSpec] = []
        # The global store hot columns, published once: the slices all
        # share the source store, so one copy serves every shard's
        # value-band and support-box needs (and future rebalancing).
        store = bound[0].db.store
        self._spatial_dims = bound[0].db.spatial_dims
        for column, values in store.hot_columns().items():
            arrays[f"store/{column}"] = values
        for shard_slice in bound:
            method = shard_slice.db.packed_access_method()
            if method is None:
                raise ShardError(
                    f"shard {shard_slice.shard} slice has no packed access "
                    "method"
                )
            shard = shard_slice.shard
            level_keys: list[tuple[str, str, str]] = []
            for depth, level in enumerate(method.packed.levels):
                keys = (
                    f"s{shard}/L{depth}/low",
                    f"s{shard}/L{depth}/high",
                    f"s{shard}/L{depth}/start",
                )
                arrays[keys[0]] = level.low
                arrays[keys[1]] = level.high
                arrays[keys[2]] = level.node_start
                level_keys.append(keys)
            arrays[f"s{shard}/rows"] = method.packed.rows
            arrays[f"s{shard}/row_map"] = shard_slice.row_map
            ndim = method.packed.ndim
            specs.append(
                _ShardIndexSpec(
                    shard=shard,
                    ndim=self._spatial_dims + 1 if ndim is None else ndim,
                    spatial_dims=method.spatial_dims,
                    levels=tuple(level_keys),
                    rows_key=f"s{shard}/rows",
                    row_map_key=f"s{shard}/row_map",
                )
            )
        self._arena = SharedArena.publish(arrays)
        size = self._processes or min(
            max(len(bound), 1), os.cpu_count() or 1
        )
        self._rings = tuple(
            ResultRing.create(self._ring_bytes) for _ in range(size)
        )
        context = multiprocessing.get_context("spawn")
        slot_counter = context.Value("q", 0)
        config = _WorkerConfig(
            manifest=self._arena.manifest,
            specs=tuple(specs),
            ring_names=self.ring_names,
        )
        self._pool = ProcessPoolExecutor(
            max_workers=size,
            mp_context=context,
            initializer=_shm_worker_init,
            initargs=(config, slot_counter),
        )
        self.stats = GatherStats()
        self.last_gather = GatherStats()

    def close(self) -> None:
        """Stop the pool and unlink every owned segment (idempotent).

        Deterministic reclamation is unconditional: the pool may be
        healthy, broken by a worker crash, or mid-gather when the
        parent raises -- the segments are parent-owned, so they are
        unlinked here regardless of worker state.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        for ring in self._rings:
            ring.close()
        self._rings = ()
        if self._arena is not None:
            self._arena.close()
            self._arena = None

    def __enter__(self) -> "SharedMemoryShardExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- execution ----------------------------------------------------------

    def run(
        self, tasks: Sequence[AnyShardTask]
    ) -> list[ShardBatchResult]:
        """Scatter tasks; gather rows/counts/io as ring views.

        The returned results are valid until the next ``run`` on this
        executor (ring space is recycled per batch).
        """
        if self._pool is None:
            raise ShardError("executor is not bound to a sharded database")
        gather = GatherStats(gathers=1, tasks=len(tasks))
        if not tasks:
            self.last_gather = gather
            gather.merged_into(self.stats)
            return []
        self._batch_id += 1
        envelopes = [
            _TaskEnvelope(batch_id=self._batch_id, task=task) for task in tasks
        ]
        try:
            answers = list(self._pool.map(_shm_run_task, envelopes))
        except BrokenProcessPool as exc:
            raise ShardError(
                "shm worker pool broke mid-gather (worker crashed); close() "
                "still reclaims all shared-memory segments"
            ) from exc
        results: list[ShardBatchResult] = []
        for answer in answers:
            if answer.descriptor is not None:
                ring = self._rings[answer.descriptor.slot]
                results.append(ring.read(answer.descriptor))
                gather.shm_payload_bytes += answer.payload_bytes
            else:
                assert answer.fallback is not None
                results.append(answer.fallback)
                gather.fallback_tasks += 1
                gather.pickled_payload_bytes += answer.payload_bytes
        self.last_gather = gather
        gather.merged_into(self.stats)
        return results
