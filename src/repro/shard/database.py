"""A spatially sharded :class:`~repro.server.database.ObjectDatabase`.

:class:`ShardedDatabase` splits a built database into spatial shards
(per a :class:`~repro.shard.mapping.ShardMap` over object footprints).
Each shard owns a slice: its own :class:`ObjectDatabase` over the
member objects' existing stores (no decomposition is re-run, the
:class:`~repro.store.columns.CoefficientStore` rows are shared) and
hence its own packed index, plus a ``row_map`` translating
slice-local store rows back to rows of the *global* concatenated
store.  The sharded database keeps the full object table and the
global store, so every consumer of the :class:`ObjectDatabase`
contract -- payload pricing, base-mesh shipping, block buffering --
keeps working on global row ids unchanged.

Query answering becomes plan / scatter / gather:

* **plan** -- intersect the query's index-space box ``(x, y[, z], w)``
  with each shard's bounds (the union of its rows' support-region x
  value boxes) and keep the intersecting shards.  With a single shard
  the pruning is bypassed so even a miss bills the same root traversal
  the unsharded index would -- exact I/O parity at ``S == 1``.
* **scatter** -- run the sub-query on every planned shard's packed
  index through a :class:`~repro.shard.parallel.ShardExecutor`
  (serial in-process, or a forked worker pool), mapping slice rows to
  global rows.
* **gather** -- concatenate in ascending shard order, sum the
  per-shard :class:`~repro.index.stats.IOStats`, and sort the rows
  into ascending packed-uid order -- the server's canonical delivery
  order, which is what makes the scatter-gather response bit-identical
  to the monolithic index's (same row *set*, same canonical order).

A sharded database is immutable: :meth:`add_object` raises, and there
is no global access method (each shard has its own), so
:attr:`access_method` raises too and
:meth:`packed_access_method` reports ``None`` -- the server's
frame-delta planner is instead sharded by the coordinator.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, Sequence, Union

import numpy as np

from repro.errors import ShardError
from repro.geometry.box import Box
from repro.index.access import AccessResult, _spatial_query_box
from repro.index.columnar import RowResult
from repro.index.stats import IOStats
from repro.server.database import AnyAccessMethod, ObjectDatabase, StoredObject
from repro.shard.mapping import ShardMap
from repro.shard.parallel import (
    DEFAULT_OVERHEAD_BUDGET_S,
    ProcessShardExecutor,
    SerialShardExecutor,
    ShardBatchResult,
    ShardExecutor,
    ShardSlice,
    ShardTask,
    measure_batch_overhead,
)
from repro.shard.shm import SharedMemoryShardExecutor
from repro.wavelets.analysis import WaveletDecomposition

__all__ = ["ShardedDatabase", "ExecutorSpec", "FlatGather"]

#: An executor instance, or one of the named policies ``"serial"``,
#: ``"process"``, ``"shm"``, ``"auto"`` (``None`` means serial).
ExecutorSpec = Union[ShardExecutor, str, None]

_EXECUTOR_NAMES = ("auto", "serial", "process", "shm")


def _usable_cpus() -> int:
    """Cores this process may actually schedule on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1


@dataclass(frozen=True)
class FlatGather:
    """A whole scatter batch gathered as flat arrays, not per-query objects.

    Sub-query ``q`` owns ``rows[offsets[q]:offsets[q + 1]]``, already in
    the canonical ascending packed-uid order; ``io`` is the ``(Q, 3)``
    per-sub-query ``(node_reads, leaf_reads, entries_scanned)`` matrix
    and ``consulted[q]`` the number of shards that answered ``q`` (the
    per-query ``IOStats.queries`` of the object path).
    """

    rows: np.ndarray
    offsets: np.ndarray
    io: np.ndarray
    consulted: np.ndarray

    @property
    def query_count(self) -> int:
        return int(self.offsets.size - 1)


class ShardedDatabase(ObjectDatabase):
    """Scatter-gather facade over per-shard object databases.

    Build one with :meth:`from_database`; the two-argument constructor
    is for callers that already hold a :class:`ShardMap`.
    """

    def __init__(
        self,
        source: ObjectDatabase,
        shard_map: ShardMap,
        *,
        executor: ExecutorSpec = None,
        overhead_budget_s: float = DEFAULT_OVERHEAD_BUDGET_S,
    ) -> None:
        super().__init__(
            encoding=source.encoding,
            access_method="packed",
            spatial_dims=source.spatial_dims,
        )
        objects = source.objects
        if not objects:
            raise ShardError("cannot shard an empty database")
        if shard_map.object_count != len(objects):
            raise ShardError(
                f"shard map covers {shard_map.object_count} objects, "
                f"database holds {len(objects)}"
            )
        for obj in objects:
            self._objects[obj.object_id] = obj
        # The *global* store: same lazy concatenation (and row order) the
        # source database exposes, so global row ids stay interchangeable.
        self._store = source.store
        self._shard_map = shard_map
        # Global row extent of each object, in insertion order.
        lengths = np.fromiter(
            (len(obj.store) for obj in objects),
            dtype=np.int64,
            count=len(objects),
        )
        starts = np.concatenate([[0], np.cumsum(lengths)])
        slices: list[ShardSlice] = []
        for shard in range(shard_map.shard_count):
            members = shard_map.members(shard)
            slice_db = self._slice_database(
                objects[int(i)] for i in members
            )
            row_map = np.concatenate(
                [
                    np.arange(starts[i], starts[i] + lengths[i], dtype=np.int64)
                    for i in members
                ]
            )
            if row_map.size == 0:
                raise ShardError(f"shard {shard} owns no store rows")
            row_map.setflags(write=False)
            slices.append(ShardSlice(shard=shard, db=slice_db, row_map=row_map))
        self._slices = tuple(slices)
        # Per-shard index-space bounds (support MBB x value union) for
        # the planning step, straight off the global store columns.
        sd = self._spatial_dims
        low_cols = np.concatenate(
            [self._store.support_low[:, :sd], self._store.values[:, None]],
            axis=1,
        )
        high_cols = np.concatenate(
            [self._store.support_high[:, :sd], self._store.values[:, None]],
            axis=1,
        )
        self._bounds_low = np.vstack(
            [low_cols[sl.row_map].min(axis=0) for sl in slices]
        )
        self._bounds_high = np.vstack(
            [high_cols[sl.row_map].max(axis=0) for sl in slices]
        )
        self._executor: ShardExecutor = self._bind_executor(
            executor, overhead_budget_s
        )

    def _bind_executor(
        self, spec: ExecutorSpec, overhead_budget_s: float
    ) -> ShardExecutor:
        """Resolve an executor spec and bind it to the slices.

        An explicit :class:`~repro.shard.parallel.ShardExecutor`
        instance always wins; the named policies are ``"serial"``
        (also ``None``), ``"process"``, ``"shm"``, and ``"auto"`` --
        the measured policy of :meth:`_auto_executor`.
        """
        if isinstance(spec, str) and spec not in _EXECUTOR_NAMES:
            raise ShardError(
                f"unknown executor policy {spec!r}; expected one of "
                f"{', '.join(_EXECUTOR_NAMES)} or a ShardExecutor instance"
            )
        if spec == "auto":
            return self._auto_executor(overhead_budget_s)
        executor: ShardExecutor
        if spec is None or spec == "serial":
            executor = SerialShardExecutor()
        elif spec == "process":
            executor = ProcessShardExecutor()
        elif spec == "shm":
            executor = SharedMemoryShardExecutor()
        else:
            executor = spec
        executor.bind(self._slices)
        return executor

    def _auto_executor(self, overhead_budget_s: float) -> ShardExecutor:
        """Measured policy: pay for a pool only where it can pay back.

        One shard (nothing to scatter in parallel) or one usable core
        never constructs a pool at all -- the 1-shard workload must not
        pay a microsecond of pool overhead.  Otherwise the shm pool is
        kept only when its measured per-batch round-trip overhead
        (:func:`~repro.shard.parallel.measure_batch_overhead`) fits the
        budget; a pool that costs more per scatter than the budget is
        torn down again in favour of the serial engine.
        """
        serial = SerialShardExecutor()
        if self.shard_count == 1 or _usable_cpus() < 2:
            serial.bind(self._slices)
            return serial
        pool = SharedMemoryShardExecutor()
        pool.bind(self._slices)
        try:
            overhead = measure_batch_overhead(pool)
        except ShardError:  # pragma: no cover - pool died during probe
            overhead = float("inf")
        if overhead > overhead_budget_s:
            pool.close()
            serial.bind(self._slices)
            return serial
        return pool

    def _slice_database(
        self, objects: "Iterable[StoredObject]"
    ) -> ObjectDatabase:
        """Build one shard's database; the scene variant overrides this."""
        return ObjectDatabase.from_objects(
            objects,
            encoding=self._encoding,
            access_method="packed",
            spatial_dims=self._spatial_dims,
        )

    def slice_uid_step(self, shard: int) -> tuple[np.ndarray, np.ndarray]:
        """One shard's (old uids, new uids) across the last epoch step.

        Static sharded databases never step, so there is nothing to
        report; the epoch-versioned variant overrides this for the
        coordinator's per-shard planner invalidation.
        """
        raise ShardError(
            "a static sharded database has no epoch steps; build a "
            "ShardedSceneDatabase for dynamic scenes"
        )

    @classmethod
    def from_database(
        cls,
        source: ObjectDatabase,
        shard_count: int,
        *,
        tiling: str = "str",
        executor: ExecutorSpec = None,
        overhead_budget_s: float = DEFAULT_OVERHEAD_BUDGET_S,
    ) -> "ShardedDatabase":
        """Shard ``source`` by tiling its object footprints."""
        shard_map = ShardMap.build(
            [obj.footprint for obj in source.objects],
            shard_count,
            tiling=tiling,
        )
        return cls(
            source,
            shard_map,
            executor=executor,
            overhead_budget_s=overhead_budget_s,
        )

    # -- topology --------------------------------------------------------------

    @property
    def shard_map(self) -> ShardMap:
        return self._shard_map

    @property
    def shard_count(self) -> int:
        return self._shard_map.shard_count

    @property
    def slices(self) -> tuple[ShardSlice, ...]:
        return self._slices

    @property
    def executor(self) -> ShardExecutor:
        return self._executor

    def member_ids(self, shard: int) -> np.ndarray:
        """Sorted object ids assigned to ``shard`` by the shard map.

        Membership is a property of the map, not of the current rows:
        for an epoch-versioned sharded database this keeps naming a
        removed object's owning shard, which the coordinator's
        per-shard cache invalidation relies on.
        """
        if not 0 <= shard < self.shard_count:
            raise ShardError(
                f"shard {shard} out of range [0, {self.shard_count})"
            )
        objects = self.objects
        return np.unique(
            np.fromiter(
                (
                    objects[int(i)].object_id
                    for i in self._shard_map.members(shard)
                ),
                dtype=np.int64,
            )
        )

    def shard_bounds(self, shard: int) -> Box:
        """Index-space bounds of one shard's rows."""
        if not 0 <= shard < self.shard_count:
            raise ShardError(
                f"shard {shard} out of range [0, {self.shard_count})"
            )
        return Box(self._bounds_low[shard], self._bounds_high[shard])

    def close(self) -> None:
        """Release the executor (worker pool, if any)."""
        self._executor.close()

    def __enter__(self) -> "ShardedDatabase":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- frozen-contract overrides ---------------------------------------------

    def add_object(
        self, object_id: int, decomposition: WaveletDecomposition
    ) -> None:
        raise ShardError(
            "a sharded database is immutable; re-shard the source database "
            "after mutating it"
        )

    @property
    def access_method(self) -> AnyAccessMethod:
        raise ShardError(
            "a sharded database has per-shard access methods, not a global "
            "one; query through query_region_rows / query_region"
        )

    def packed_access_method(self) -> None:
        """No *global* packed index exists; see the shard coordinator."""
        return None

    # -- plan / scatter / gather ----------------------------------------------

    def query_box(self, region: Box, w_min: float, w_max: float) -> Box:
        """The index-space box of ``Q(region, w_min, w_max)``."""
        if not 0.0 <= w_min <= w_max <= 1.0:
            raise ShardError(
                f"invalid value band [{w_min}, {w_max}]; "
                f"need 0 <= min <= max <= 1"
            )
        spatial = _spatial_query_box(region, self._spatial_dims)
        return spatial.augment([w_min], [w_max])

    def _query_corners(
        self, subqueries: Sequence[tuple[Box, float, float]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stacked index-space corners of many sub-queries at once."""
        sd = self._spatial_dims
        qlow = np.empty((len(subqueries), sd + 1))
        qhigh = np.empty((len(subqueries), sd + 1))
        for i, (region, w_min, w_max) in enumerate(subqueries):
            if not 0.0 <= w_min <= w_max <= 1.0:
                raise ShardError(
                    f"invalid value band [{w_min}, {w_max}]; "
                    f"need 0 <= min <= max <= 1"
                )
            if region.ndim == sd:
                qlow[i, :sd] = region.low
                qhigh[i, :sd] = region.high
            else:
                spatial = _spatial_query_box(region, sd)
                qlow[i, :sd] = spatial.low
                qhigh[i, :sd] = spatial.high
            qlow[i, sd] = w_min
            qhigh[i, sd] = w_max
        return qlow, qhigh

    def plan(self, region: Box, w_min: float, w_max: float) -> np.ndarray:
        """Shard ids whose bounds intersect the query, ascending.

        With one shard the pruning is bypassed: the unsharded index
        always bills at least a root read even for a miss, so the
        single shard must be consulted unconditionally for the
        ``S == 1`` I/O-parity invariant to hold exactly.
        """
        return self.plan_many([(region, w_min, w_max)])[0]

    def plan_many(
        self, subqueries: Sequence[tuple[Box, float, float]]
    ) -> list[np.ndarray]:
        """Plan a batch: per sub-query, ascending intersecting shards.

        One broadcast intersection test covers the whole batch -- the
        planning cost of a scatter is a single ``(Q, S, ndim)`` numpy
        comparison, not ``Q`` box constructions.
        """
        if not subqueries:
            return []
        if self.shard_count == 1:
            # Pruning bypass, see :meth:`plan`.
            return [np.zeros(1, dtype=np.int64) for _ in subqueries]
        qlow, qhigh = self._query_corners(subqueries)
        hits = self.plan_corners(qlow, qhigh)
        return [np.flatnonzero(row) for row in hits]

    def plan_corners(
        self, qlow: np.ndarray, qhigh: np.ndarray
    ) -> np.ndarray:
        """Boolean ``(Q, S)`` consult matrix over pre-lowered corners.

        The whole-fleet planning primitive: one broadcast intersection
        of every query box against every shard's bounds, no per-query
        Python at all.  With one shard every query consults it
        unconditionally (the :meth:`plan` pruning bypass, kept for
        exact ``S == 1`` I/O parity).
        """
        nq = int(qlow.shape[0])
        if self.shard_count == 1:
            return np.ones((nq, 1), dtype=bool)
        return np.all(
            (self._bounds_low[None, :, :] <= qhigh[:, None, :])
            & (self._bounds_high[None, :, :] >= qlow[:, None, :]),
            axis=2,
        )

    def assemble(
        self,
        assignments: Sequence[Sequence[int]],
        batches: Sequence[ShardBatchResult],
        total: int,
    ) -> list[RowResult]:
        """Gather compact shard batches into per-sub-query results.

        ``assignments[t]`` lists the (global) sub-query indices that
        task ``t``'s batch answered, in its sub-query order; tasks must
        be in ascending shard order.  Every sub-query's rows end up in
        canonical ascending packed-uid order, its I/O is the sum over
        the shards consulted, and ``queries`` counts those shards --
        one, matching the unsharded path exactly, when ``S == 1``.
        """
        parts: list[list[np.ndarray]] = [[] for _ in range(total)]
        io = np.zeros((total, 3), dtype=np.int64)
        consulted = np.zeros(total, dtype=np.int64)
        for indices, batch in zip(assignments, batches):
            offsets = batch.offsets()
            for local_q, sub_idx in enumerate(indices):
                group = batch.rows[offsets[local_q] : offsets[local_q + 1]]
                if group.size:
                    parts[sub_idx].append(group)
            if len(indices):
                index_arr = np.asarray(indices, dtype=np.int64)
                io[index_arr] += batch.io
                consulted[index_arr] += 1
        uids = self.store.packed_uids
        out: list[RowResult] = []
        empty = np.empty(0, dtype=np.int64)
        for q in range(total):
            groups = parts[q]
            rows = groups[0] if len(groups) == 1 else (
                np.concatenate(groups) if groups else empty
            )
            if rows.size > 1:
                rows = rows[np.argsort(uids[rows], kind="stable")]
            elif len(groups) == 1:
                # Sole-group short results are views into the batch --
                # which may be shared-memory ring space recycled by the
                # next scatter -- so detach them.
                rows = rows.copy()
            out.append(
                RowResult(
                    rows=rows,
                    io=IOStats(
                        node_reads=int(io[q, 0]),
                        leaf_reads=int(io[q, 1]),
                        entries_scanned=int(io[q, 2]),
                        queries=int(consulted[q]),
                    ),
                )
            )
        return out

    def assemble_flat(
        self,
        assignments: Sequence[np.ndarray],
        batches: Sequence[ShardBatchResult],
        total: int,
    ) -> FlatGather:
        """Gather a whole scatter batch into flat arrays in one pass.

        The vectorised sibling of :meth:`assemble` for fleet-scale
        batches: instead of building ``total`` :class:`RowResult`
        objects it sorts the concatenated rows once by ``(sub-query,
        packed uid)`` -- the same canonical per-query ascending-uid
        order, since uids are globally unique -- and returns the flat
        :class:`FlatGather` arrays.  Row-for-row identical to
        :meth:`assemble` (and detached from any executor ring memory).
        """
        uids = self.store.packed_uids
        io = np.zeros((total, 3), dtype=np.int64)
        consulted = np.zeros(total, dtype=np.int64)
        row_parts: list[np.ndarray] = []
        qid_parts: list[np.ndarray] = []
        for indices, batch in zip(assignments, batches):
            index_arr = np.asarray(indices, dtype=np.int64)
            row_parts.append(batch.rows)
            qid_parts.append(np.repeat(index_arr, batch.counts))
            if index_arr.size:
                io[index_arr] += batch.io
                consulted[index_arr] += 1
        if row_parts:
            all_rows = np.concatenate(row_parts)
            all_qid = np.concatenate(qid_parts)
        else:
            all_rows = np.empty(0, dtype=np.int64)
            all_qid = np.empty(0, dtype=np.int64)
        order = np.lexsort((uids[all_rows], all_qid))
        rows = all_rows[order]
        offsets = np.zeros(total + 1, dtype=np.int64)
        np.cumsum(np.bincount(all_qid, minlength=total), out=offsets[1:])
        return FlatGather(
            rows=rows, offsets=offsets, io=io, consulted=consulted
        )

    def gather_rows(self, parts: Sequence[RowResult]) -> RowResult:
        """Merge per-shard partials into one canonical result.

        ``parts`` must arrive in ascending shard order (the plan
        order); rows are re-sorted into ascending packed-uid order and
        the I/O counters are the per-shard sums.
        """
        if not parts:
            return RowResult(rows=np.empty(0, dtype=np.int64), io=IOStats())
        io = IOStats()
        for part in parts:
            io = io.merged(part.io)
        rows = np.concatenate([part.rows for part in parts])
        if rows.size > 1:
            rows = rows[
                np.argsort(self.store.packed_uids[rows], kind="stable")
            ]
        return RowResult(rows=rows, io=io)

    def query_region_rows(
        self, region: Box, w_min: float, w_max: float
    ) -> RowResult:
        """One window query, scattered to the intersecting shards."""
        shards = self.plan(region, w_min, w_max)
        tasks = [
            ShardTask(shard=int(shard), subqueries=((region, w_min, w_max),))
            for shard in shards
        ]
        batches = self._executor.run(tasks)
        return self.assemble([[0]] * len(tasks), batches, 1)[0]

    def query_region(
        self, region: Box, w_min: float, w_max: float
    ) -> AccessResult:
        """The scattered query materialised as per-record views."""
        result = self.query_region_rows(region, w_min, w_max)
        records = list(self.store.records(result.rows))
        return AccessResult(
            records=records,
            io=result.io,
            retrieved_with_duplicates=len(records),
        )
