"""Spatial shard assignment over object footprints.

A :class:`ShardMap` partitions the objects of a cityscape into spatial
shards by tiling the plane of their footprint (support-region MBB)
centres.  Two tilings are offered:

* ``"str"`` -- Sort-Tile-Recursive, the same packing discipline the
  bulk loader uses for R-tree leaves: sort centres by x, cut into
  near-equal vertical slabs, sort each slab by y and cut it into
  tiles.  Shards come out balanced in *object count*, which balances
  per-shard index size and scatter work.
* ``"grid"`` -- a regular ``gx x gy`` grid over the footprint bounding
  box, assigning each object to the cell holding its centre.  Shards
  are balanced in *area* instead, which mirrors how a cityscape would
  be partitioned operationally (one shard per city district).

Empty tiles are compressed away, so every shard of the resulting map
owns at least one object and ``shard_count`` reports the effective
count (at most the requested count, never more than the object count).
The assignment is a pure function of the footprints and the requested
tiling -- no RNG, no iteration-order sensitivity -- so two builds over
the same database always agree, which the scatter-gather parity
invariants rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ShardError
from repro.geometry.box import Box

__all__ = ["ShardMap", "TILINGS"]

#: The selectable tiling disciplines.
TILINGS = ("str", "grid")


def _near_square_grid(shard_count: int) -> tuple[int, int]:
    """Factor ``shard_count`` into the most-square ``(gx, gy)`` grid."""
    gx = int(np.floor(np.sqrt(shard_count)))
    while shard_count % gx:
        gx -= 1
    return shard_count // gx, gx


@dataclass(frozen=True)
class ShardMap:
    """An object -> shard assignment plus per-shard membership.

    Attributes
    ----------
    shard_of:
        ``(n_objects,)`` int64 shard id per object *position* (the
        database's insertion order, which also fixes global store row
        order).
    tiling:
        The discipline that produced the assignment.
    requested:
        The shard count asked for; the effective :attr:`shard_count`
        can be lower when tiles came out empty.
    """

    shard_of: np.ndarray
    tiling: str
    requested: int

    def __post_init__(self) -> None:
        shard_of = np.ascontiguousarray(self.shard_of, dtype=np.int64)
        shard_of.setflags(write=False)
        object.__setattr__(self, "shard_of", shard_of)
        if shard_of.ndim != 1:
            raise ShardError(
                f"shard assignment must be 1-D, got shape {shard_of.shape}"
            )
        if shard_of.size and (
            int(shard_of.min()) < 0
            or np.unique(shard_of).size != int(shard_of.max()) + 1
        ):
            raise ShardError("shard ids must be dense 0..S-1")

    @property
    def object_count(self) -> int:
        return int(self.shard_of.size)

    @property
    def shard_count(self) -> int:
        """Effective number of (non-empty) shards."""
        return int(self.shard_of.max()) + 1 if self.shard_of.size else 0

    def skew_stats(
        self, rows_of_object: np.ndarray | None = None
    ) -> dict[str, object]:
        """Balance diagnostics: per-shard object (and row) populations.

        Returns a plain dict (JSON-ready, for ``bench_shard``) with the
        per-shard object counts and their max/mean imbalance ratio; when
        ``rows_of_object`` gives the store-row count of each object
        position, the same statistics are reported in rows -- the
        quantity that actually prices scatter work.
        """
        if self.shard_of.size == 0:
            raise ShardError("skew_stats of an empty shard map")
        objects = np.bincount(self.shard_of, minlength=self.shard_count)
        stats: dict[str, object] = {
            "shard_count": self.shard_count,
            "objects_per_shard": objects.astype(int).tolist(),
            "object_imbalance": float(objects.max() / objects.mean()),
        }
        if rows_of_object is not None:
            rows_of_object = np.asarray(rows_of_object, dtype=np.int64)
            if rows_of_object.shape != self.shard_of.shape:
                raise ShardError(
                    "rows_of_object must align with shard_of: "
                    f"{rows_of_object.shape} vs {self.shard_of.shape}"
                )
            rows = np.bincount(
                self.shard_of,
                weights=rows_of_object,
                minlength=self.shard_count,
            ).astype(np.int64)
            stats["rows_per_shard"] = rows.astype(int).tolist()
            stats["row_imbalance"] = float(rows.max() / rows.mean())
        return stats

    def members(self, shard: int) -> np.ndarray:
        """Object positions owned by ``shard``, in insertion order."""
        if not 0 <= shard < self.shard_count:
            raise ShardError(
                f"shard {shard} out of range [0, {self.shard_count})"
            )
        return np.flatnonzero(self.shard_of == shard)

    @classmethod
    def build(
        cls,
        footprints: Sequence[Box],
        shard_count: int,
        *,
        tiling: str = "str",
    ) -> "ShardMap":
        """Tile ``footprints`` (2-D boxes, insertion order) into shards."""
        if shard_count < 1:
            raise ShardError(f"shard_count must be >= 1, got {shard_count}")
        if tiling not in TILINGS:
            raise ShardError(f"unknown tiling {tiling!r} (expected {TILINGS})")
        if not footprints:
            raise ShardError("cannot tile an empty object set")
        centres = np.empty((len(footprints), 2))
        for i, footprint in enumerate(footprints):
            if footprint.ndim != 2:
                raise ShardError(
                    f"footprints must be 2-D boxes, got {footprint.ndim}-D"
                )
            centres[i] = (footprint.low + footprint.high) / 2.0
        requested = shard_count
        shard_count = min(shard_count, len(footprints))
        if tiling == "str":
            shard_of = cls._str_tiling(centres, shard_count)
        else:
            shard_of = cls._grid_tiling(centres, shard_count)
        return cls(
            shard_of=cls._compress(shard_of),
            tiling=tiling,
            requested=requested,
        )

    @staticmethod
    def _str_tiling(centres: np.ndarray, shard_count: int) -> np.ndarray:
        """Sort-tile-recursive: x slabs, then y tiles inside each slab."""
        shard_of = np.empty(centres.shape[0], dtype=np.int64)
        slabs = int(np.ceil(np.sqrt(shard_count)))
        by_x = np.argsort(centres[:, 0], kind="stable")
        base, extra = divmod(shard_count, slabs)
        next_shard = 0
        for i, slab in enumerate(np.array_split(by_x, slabs)):
            tiles = base + (1 if i < extra else 0)
            by_y = slab[np.argsort(centres[slab, 1], kind="stable")]
            for tile in np.array_split(by_y, max(tiles, 1)):
                shard_of[tile] = next_shard
                next_shard += 1
        return shard_of

    @staticmethod
    def _grid_tiling(centres: np.ndarray, shard_count: int) -> np.ndarray:
        """Regular grid over the centre bounding box, row-major cells."""
        gx, gy = _near_square_grid(shard_count)
        low = centres.min(axis=0)
        high = centres.max(axis=0)
        span = np.maximum(high - low, 1e-12)
        cx = np.minimum((centres[:, 0] - low[0]) / span[0] * gx, gx - 1)
        cy = np.minimum((centres[:, 1] - low[1]) / span[1] * gy, gy - 1)
        return (cx.astype(np.int64) * gy + cy.astype(np.int64)).astype(np.int64)

    @staticmethod
    def _compress(shard_of: np.ndarray) -> np.ndarray:
        """Renumber shard ids densely, dropping empty tiles."""
        _, dense = np.unique(shard_of, return_inverse=True)
        return dense.astype(np.int64)
