"""Shard execution engines: serial reference and forked worker pool.

A :class:`ShardTask` bundles every sub-query bound for one shard; an
executor runs a batch of tasks and returns one compact
:class:`ShardBatchResult` per task -- three flat arrays (concatenated
rows already mapped into the *global* store's row space, per-sub-query
counts, per-sub-query I/O) rather than per-sub-query Python objects,
so a result is one small pickle on the process path.  Both engines
produce identical results (same rows, same per-sub-query I/O
accounting) because a shard-local batch runs through the same
:meth:`~repro.index.packed.PackedAccessMethod.query_batch` frontier
walk either way -- the process pool only changes *where* it runs.

:class:`ProcessShardExecutor` relies on ``fork``: the parent compiles
every shard's packed index *before* forking, the children inherit the
flat numpy columns copy-on-write through the module-global
:data:`_POOL_SLICES`, and tasks cross the process boundary as small
pickles (boxes in, row ids out) -- no store columns are ever
serialised.  ``pool.map`` preserves task order, so scatter results
gather deterministically regardless of worker scheduling.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, Sequence, Union

import numpy as np

from repro.errors import ShardError
from repro.geometry.box import Box
from repro.index.packed import (
    PackedAccessMethod,
    corners_query_batch,
    subquery_corners,
)

if TYPE_CHECKING:
    from repro.server.database import ObjectDatabase

__all__ = [
    "ShardSlice",
    "ShardTask",
    "ShardCornerTask",
    "AnyShardTask",
    "task_corners",
    "ShardBatchResult",
    "ShardExecutor",
    "SerialShardExecutor",
    "ProcessShardExecutor",
    "measure_batch_overhead",
    "DEFAULT_OVERHEAD_BUDGET_S",
]


@dataclass(frozen=True)
class ShardSlice:
    """One shard's worth of a sharded database.

    ``db`` holds the member objects (sharing their stores with the
    source database) and builds the shard-local packed index on first
    use; ``row_map`` translates slice-local store rows to global rows.
    """

    shard: int
    db: "ObjectDatabase"
    row_map: np.ndarray

    @property
    def row_count(self) -> int:
        return int(self.row_map.size)


@dataclass(frozen=True)
class ShardTask:
    """All sub-queries scattered to one shard, batched as one unit."""

    shard: int
    subqueries: tuple[tuple[Box, float, float], ...]


@dataclass(frozen=True)
class ShardCornerTask:
    """A shard's sub-queries pre-lowered to index-space corner stacks.

    The whole-fleet path plans thousands of sub-queries at once; boxing
    each into a :class:`~repro.geometry.box.Box` tuple just to unbox it
    in the worker would dominate the scatter.  ``qlow``/``qhigh`` are
    the ``(Q, spatial_dims + 1)`` matrices
    :meth:`~repro.index.packed.PackedIndex.query_slots_many` consumes
    directly (spatial corners augmented with the value band), produced
    by :func:`~repro.index.packed.subquery_corners` or sliced from a
    fleet-wide corner stack.  Executors answer both task kinds through
    the same :func:`~repro.index.packed.corners_query_batch` walk.
    """

    shard: int
    qlow: np.ndarray
    qhigh: np.ndarray


AnyShardTask = Union[ShardTask, ShardCornerTask]


def task_corners(
    task: AnyShardTask, spatial_dims: int
) -> tuple[np.ndarray, np.ndarray]:
    """A task's query-box corners, lowering boxed sub-queries on demand."""
    if isinstance(task, ShardCornerTask):
        return task.qlow, task.qhigh
    return subquery_corners(task.subqueries, spatial_dims)


@dataclass(frozen=True)
class ShardBatchResult:
    """One shard's compact answer to a :class:`ShardTask`.

    ``rows`` holds *global* store rows for every sub-query of the
    task, concatenated in sub-query order; sub-query ``q`` owns the
    slice of length ``counts[q]``.  ``io`` is the ``(Q, 3)``
    per-sub-query ``(node_reads, leaf_reads, entries_scanned)``
    matrix.
    """

    shard: int
    rows: np.ndarray
    counts: np.ndarray
    io: np.ndarray

    def offsets(self) -> np.ndarray:
        """Row offsets: sub-query ``q`` owns ``rows[o[q]:o[q+1]]``."""
        return np.concatenate([[0], np.cumsum(self.counts)])


def _compiled_method(shard_slice: ShardSlice) -> PackedAccessMethod:
    method = shard_slice.db.packed_access_method()
    if method is None:
        raise ShardError(
            f"shard {shard_slice.shard} slice has no packed access method"
        )
    return method


def _execute_task(
    slices: Sequence[ShardSlice], task: AnyShardTask
) -> ShardBatchResult:
    """Run one task against its slice, mapping rows to global ids."""
    if not 0 <= task.shard < len(slices):
        raise ShardError(
            f"task targets shard {task.shard}, only {len(slices)} bound"
        )
    shard_slice = slices[task.shard]
    method = _compiled_method(shard_slice)
    qlow, qhigh = task_corners(task, method.spatial_dims)
    rows, counts, io = corners_query_batch(method.packed, qlow, qhigh)
    return ShardBatchResult(
        shard=task.shard,
        rows=shard_slice.row_map[rows],
        counts=counts,
        io=io,
    )


#: Shard slices of the currently bound ProcessShardExecutor.  Set in the
#: parent immediately before the pool forks; the children inherit the
#: compiled indexes and store columns copy-on-write and read them here.
_POOL_SLICES: tuple[ShardSlice, ...] | None = None


def _pool_run_task(task: AnyShardTask) -> ShardBatchResult:
    """Worker-side entry point: execute against the inherited slices."""
    slices = _POOL_SLICES
    if slices is None:
        raise ShardError("worker process has no inherited shard slices")
    return _execute_task(slices, task)


class ShardExecutor(Protocol):
    """The executor contract :class:`ShardedDatabase` scatters through."""

    def bind(self, slices: Sequence[ShardSlice]) -> None:
        """Attach to a database's slices (compiling their indexes)."""

    def run(self, tasks: Sequence[AnyShardTask]) -> list[ShardBatchResult]:
        """Execute tasks, one compact batch result per task."""

    def close(self) -> None:
        """Release any resources (idempotent)."""


class SerialShardExecutor:
    """In-process executor: the reference the pool must match exactly."""

    def __init__(self) -> None:
        self._slices: tuple[ShardSlice, ...] | None = None

    def bind(self, slices: Sequence[ShardSlice]) -> None:
        bound = tuple(slices)
        for shard_slice in bound:
            _compiled_method(shard_slice)
        self._slices = bound

    def run(self, tasks: Sequence[AnyShardTask]) -> list[ShardBatchResult]:
        if self._slices is None:
            raise ShardError("executor is not bound to a sharded database")
        return [_execute_task(self._slices, task) for task in tasks]

    def close(self) -> None:
        self._slices = None


class ProcessShardExecutor:
    """Forked worker pool scattering shard tasks across processes.

    Parameters
    ----------
    processes:
        Pool size; defaults to ``min(shard_count, cpu_count)`` at bind
        time.  A fresh bind tears down any previous pool.
    """

    def __init__(self, processes: int | None = None) -> None:
        if processes is not None and processes < 1:
            raise ShardError(f"processes must be >= 1, got {processes}")
        if not self.available():
            raise ShardError(
                "process execution needs the 'fork' start method; use "
                "SerialShardExecutor on this platform"
            )
        self._processes = processes
        self._pool: multiprocessing.pool.Pool | None = None

    @staticmethod
    def available() -> bool:
        """True when copy-on-write forking is supported here."""
        return "fork" in multiprocessing.get_all_start_methods()

    @property
    def workers(self) -> int:
        """Live pool size (0 before bind / after close)."""
        if self._pool is None:
            return 0
        return self._pool._processes  # type: ignore[attr-defined]

    def bind(self, slices: Sequence[ShardSlice]) -> None:
        global _POOL_SLICES
        self.close()
        bound = tuple(slices)
        # Compile every shard index in the parent so the children
        # inherit the packed arrays instead of rebuilding them.
        for shard_slice in bound:
            _compiled_method(shard_slice)
        _POOL_SLICES = bound
        size = self._processes or min(
            max(len(bound), 1), os.cpu_count() or 1
        )
        self._pool = multiprocessing.get_context("fork").Pool(processes=size)

    def run(self, tasks: Sequence[AnyShardTask]) -> list[ShardBatchResult]:
        if self._pool is None:
            raise ShardError("executor is not bound to a sharded database")
        if not tasks:
            return []
        return self._pool.map(_pool_run_task, list(tasks))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ProcessShardExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


#: Per-batch pool overhead (seconds) above which "auto" executor
#: selection keeps the serial engine: a pool that costs more than this
#: per scatter round-trip only pays off on batches larger than the
#: coordinator typically sees, and loses outright on one shard or one
#: core.  Override via ``ShardedDatabase(..., overhead_budget_s=...)``.
DEFAULT_OVERHEAD_BUDGET_S = 2e-3


def measure_batch_overhead(
    executor: ShardExecutor, *, shard: int = 0, repeats: int = 3
) -> float:
    """Measured per-batch round-trip overhead of a bound executor.

    Scatters a zero-query corner task to one shard ``repeats`` times
    and returns the *fastest* wall-clock round trip -- pure dispatch,
    pickling, and gather cost with no index work behind it, which is
    exactly the fixed tax a pooled executor adds to every scatter.
    The minimum (not the mean) is the right estimator: scheduling
    noise only ever inflates a round trip.
    """
    if repeats < 1:
        raise ShardError(f"repeats must be >= 1, got {repeats}")
    empty = np.empty((0, 0), dtype=np.float64)
    probe = ShardCornerTask(shard=shard, qlow=empty, qhigh=empty)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()  # reprolint: disable=RL001
        executor.run([probe])
        best = min(best, time.perf_counter() - start)  # reprolint: disable=RL001
    return best
