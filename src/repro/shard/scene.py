"""Epoch-versioned spatial sharding.

:class:`ShardedSceneDatabase` keeps the scatter-gather contract of
:class:`~repro.shard.database.ShardedDatabase` while the scene moves:
every slice is its own :class:`~repro.server.scene.SceneDatabase`, and
:meth:`advance_epoch` steps the global scene *and* each slice in
lockstep -- each shard applies the delta restricted to its member
objects, patching its dynamic index incrementally.  Shard membership is
fixed by the epoch-0 shard map: an object that moves keeps its shard
(the per-shard bounds are recomputed each epoch, so planning stays
exact), an object removed and re-added returns to its original shard,
and a delta introducing a brand-new object id is rejected -- no shard
owns it.

Parity: per shard, the incrementally patched slice equals a slice
rebuilt from scratch at that epoch bit for bit (the dynamic index
invariant), and the gather stage sorts the union into canonical
ascending-uid order -- so responses are identical across shard counts
at every epoch, exactly as in the static case.

Bookkeeping per step: slice-local row ids are re-based into the new
global row space (one ``searchsorted`` per shard -- both sides are
uid-sorted), the per-shard planning bounds are recomputed from the new
columns, and the serial executor is re-bound.  Only the
:class:`~repro.shard.parallel.SerialShardExecutor` is supported: a
forked pool inherits compiled index arrays copy-on-write at bind time,
so epoch patches applied in the parent would never reach the workers.

As-of-epoch queries bypass the scatter entirely and answer from the
global scene database's retained epoch views.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import ShardError
from repro.geometry.box import Box
from repro.index.columnar import RowResult
from repro.server.database import ObjectDatabase, StoredObject
from repro.server.scene import SceneDatabase
from repro.shard.database import ShardedDatabase
from repro.shard.mapping import ShardMap
from repro.shard.parallel import SerialShardExecutor, ShardSlice
from repro.store.columns import CoefficientStore
from repro.store.scene import FootprintDelta, SceneDelta
from repro.wavelets.analysis import WaveletDecomposition

__all__ = ["ShardedSceneDatabase"]


def _restrict_delta(delta: SceneDelta, member_ids: np.ndarray) -> SceneDelta:
    """The delta as one shard sees it: member objects' changes only."""
    keep_moves = np.isin(delta.move_ids, member_ids)
    return SceneDelta(
        add_rows=delta.add_rows[
            np.isin(delta.add_rows["object_id"], member_ids)
        ],
        remove_ids=delta.remove_ids[np.isin(delta.remove_ids, member_ids)],
        move_ids=delta.move_ids[keep_moves],
        move_offsets=delta.move_offsets[keep_moves],
        remesh_rows=delta.remesh_rows[
            np.isin(delta.remesh_rows["object_id"], member_ids)
        ],
    )


class ShardedSceneDatabase(ShardedDatabase):
    """Scatter-gather over per-shard scene databases, stepped in lockstep."""

    def __init__(
        self,
        source: SceneDatabase,
        shard_map: ShardMap,
    ) -> None:
        if not isinstance(source, SceneDatabase):
            raise ShardError(
                "ShardedSceneDatabase requires a SceneDatabase source"
            )
        self._source = source
        super().__init__(source, shard_map, executor=SerialShardExecutor())
        # Membership is frozen at epoch 0: restricted deltas and
        # re-adds route by these sets forever.
        self._member_ids = tuple(
            self.member_ids(shard) for shard in range(shard_map.shard_count)
        )
        # The base constructor derived row maps from the source's
        # insertion-order concatenation; a scene store is canonically
        # uid-ordered instead, so re-derive them (and the planning
        # bounds that were computed from them).
        self._refresh_row_maps()
        self._refresh_bounds()
        self._executor.bind(self._slices)
        self._uid_steps: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def _slice_database(
        self, objects: "Iterable[StoredObject]"
    ) -> ObjectDatabase:
        return SceneDatabase.from_objects(
            objects,
            encoding=self._encoding,
            access_method="packed",
            spatial_dims=self._spatial_dims,
        )

    # -- derived state ------------------------------------------------------

    @property
    def source(self) -> SceneDatabase:
        return self._source

    @property
    def store(self) -> CoefficientStore:
        """The current epoch's global view (canonical uid order)."""
        return self._source.store

    def _refresh_row_maps(self) -> None:
        """Re-base slice-local rows into the current global row space.

        Both the global view and every slice view are sorted by packed
        uid and every slice uid is present globally, so the map is one
        ``searchsorted`` per shard.
        """
        global_uids = self.store.packed_uids
        slices: list[ShardSlice] = []
        for shard_slice in self._slices:
            slice_uids = shard_slice.db.store.packed_uids
            row_map = np.searchsorted(global_uids, slice_uids)
            row_map.setflags(write=False)
            slices.append(
                ShardSlice(
                    shard=shard_slice.shard,
                    db=shard_slice.db,
                    row_map=row_map,
                )
            )
        self._slices = tuple(slices)

    def _refresh_bounds(self) -> None:
        """Recompute per-shard index-space bounds from the live columns."""
        sd = self._spatial_dims
        store = self.store
        low_cols = np.concatenate(
            [store.support_low[:, :sd], store.values[:, None]], axis=1
        )
        high_cols = np.concatenate(
            [store.support_high[:, :sd], store.values[:, None]], axis=1
        )
        self._bounds_low = np.vstack(
            [low_cols[sl.row_map].min(axis=0) for sl in self._slices]
        )
        self._bounds_high = np.vstack(
            [high_cols[sl.row_map].max(axis=0) for sl in self._slices]
        )

    # -- the epoch surface --------------------------------------------------

    @property
    def current_epoch(self) -> int:
        return self._source.current_epoch

    def store_at(self, epoch: int) -> CoefficientStore:
        return self._source.store_at(epoch)

    def query_region_rows_at(
        self, epoch: int, region: Box, w_min: float, w_max: float
    ) -> RowResult:
        """As-of-epoch answering from the global retained views.

        Pinned epochs skip the scatter: the global scene database kept
        the whole compiled index of each retained epoch, so a serial
        traversal there is both simpler and I/O-identical to what the
        monolithic server reports for the same epoch.
        """
        if epoch == self.current_epoch:
            return self.query_region_rows(region, w_min, w_max)
        return self._source.query_region_rows_at(epoch, region, w_min, w_max)

    def get_object(self, object_id: int) -> StoredObject:
        # Post-seal incarnations register on the source; delegate so
        # base-mesh shipping serves the latest mesh.
        return self._source.get_object(object_id)

    def register_epoch_object(
        self, object_id: int, decomposition: WaveletDecomposition
    ) -> np.ndarray:
        """Stage an incarnation for a delta (see :class:`SceneDatabase`).

        Only existing member objects may be staged -- a brand-new id
        has no owning shard.
        """
        owned = any(
            bool(np.isin(object_id, members).item())
            for members in self._member_ids
        )
        if not owned:
            raise ShardError(
                f"object {object_id} belongs to no shard; adding new "
                "objects to a sharded scene is not supported"
            )
        return self._source.register_epoch_object(object_id, decomposition)

    def advance_epoch(self, delta: SceneDelta) -> FootprintDelta:
        """Step the global scene and every slice one epoch, in lockstep."""
        all_members = np.concatenate(self._member_ids)
        new_ids = np.setdiff1d(delta.add_rows["object_id"], all_members)
        if new_ids.size:
            raise ShardError(
                f"delta adds unowned objects {new_ids.tolist()}; shard "
                "membership is fixed at epoch 0"
            )
        old_uids = {
            sl.shard: sl.db.store.packed_uids for sl in self._slices
        }
        footprint = self._source.advance_epoch(delta)
        for shard_slice in self._slices:
            shard_slice.db.advance_epoch(
                _restrict_delta(delta, self._member_ids[shard_slice.shard])
            )
        self._refresh_row_maps()
        self._refresh_bounds()
        self._executor.bind(self._slices)
        self._uid_steps = {
            sl.shard: (old_uids[sl.shard], sl.db.store.packed_uids)
            for sl in self._slices
        }
        self._block_cache.clear()
        return footprint

    def slice_uid_step(self, shard: int) -> tuple[np.ndarray, np.ndarray]:
        if shard not in self._uid_steps:
            raise ShardError(
                f"no epoch step recorded for shard {shard} (advance_epoch "
                "has not run)"
            )
        return self._uid_steps[shard]
