"""Spatial sharding with process-parallel scatter-gather retrieval.

Splits the cityscape into spatial shards -- each with its own
coefficient-store slice and packed index -- and answers retrieve
requests coordinator-style: plan the ``(box, w-band)`` query against
the shard map, scatter batched sub-queries to the intersecting
shards (in process or across a forked worker pool), and gather with
the server's canonical uid merge so responses stay bit-identical to
the single-index path.  See DESIGN.md section 13.
"""

from __future__ import annotations

from repro.shard.coordinator import (
    FleetShipping,
    FleetTickResult,
    ShardCoordinator,
)
from repro.shard.database import ExecutorSpec, FlatGather, ShardedDatabase
from repro.shard.mapping import TILINGS, ShardMap
from repro.shard.scene import ShardedSceneDatabase
from repro.shard.parallel import (
    ProcessShardExecutor,
    SerialShardExecutor,
    ShardBatchResult,
    ShardCornerTask,
    ShardExecutor,
    ShardSlice,
    ShardTask,
)
from repro.shard.shm import GatherStats, SharedArena, SharedMemoryShardExecutor

__all__ = [
    "ShardMap",
    "TILINGS",
    "ShardedDatabase",
    "ShardedSceneDatabase",
    "ShardCoordinator",
    "ShardExecutor",
    "ShardSlice",
    "ShardTask",
    "ShardCornerTask",
    "ShardBatchResult",
    "SerialShardExecutor",
    "ProcessShardExecutor",
    "SharedMemoryShardExecutor",
    "SharedArena",
    "GatherStats",
    "ExecutorSpec",
    "FlatGather",
    "FleetShipping",
    "FleetTickResult",
]
