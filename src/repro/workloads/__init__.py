"""Workloads: synthetic city datasets and experiment configuration."""

from repro.workloads.cityscape import (
    CityConfig,
    build_city,
    populate_city,
    zipf_weights,
)
from repro.workloads.config import (
    PAPER_BUFFER_KB,
    PAPER_QUERY_FRACS,
    PAPER_SPEEDS,
    ExperimentScale,
)

from repro.workloads.dynamics import (
    construction_site_deltas,
    dynamic_city,
    rush_hour_deltas,
)

__all__ = [
    "CityConfig",
    "build_city",
    "populate_city",
    "zipf_weights",
    "dynamic_city",
    "rush_hour_deltas",
    "construction_site_deltas",
    "ExperimentScale",
    "PAPER_SPEEDS",
    "PAPER_QUERY_FRACS",
    "PAPER_BUFFER_KB",
]
