"""Workloads: synthetic city datasets and experiment configuration."""

from repro.workloads.cityscape import CityConfig, build_city, zipf_weights
from repro.workloads.config import (
    PAPER_BUFFER_KB,
    PAPER_QUERY_FRACS,
    PAPER_SPEEDS,
    ExperimentScale,
)

__all__ = [
    "CityConfig",
    "build_city",
    "zipf_weights",
    "ExperimentScale",
    "PAPER_SPEEDS",
    "PAPER_QUERY_FRACS",
    "PAPER_BUFFER_KB",
]
