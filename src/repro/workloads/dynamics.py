"""Dynamic-scene workloads: delta schedules for epoch-versioned cities.

Two paper-motivated mutation patterns, each packaged as a
``next_delta`` factory for :class:`~repro.sim.epochs.EpochSource` (the
``k``-th call returns the delta advancing the scene to epoch ``k + 1``,
or ``None`` when the schedule ends):

* **rush hour** -- a subset of objects (vehicles) commutes: every epoch
  they translate along a per-object heading, reversing direction each
  epoch so the fleet oscillates around its parked positions and the
  scene stays inside the index grid fitted at build time;
* **construction site** -- sites are re-meshed round-robin: each epoch
  one object's decomposition is regenerated (a procedural building
  anchored at the old footprint) and swapped in via
  ``remesh_rows``.

Every factory draws only from generators derived off its ``seed``
(no global randomness), so a whole dynamic run is a pure function of
``(config, seed)`` and reruns fingerprint-identically.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.mesh.generators import procedural_building
from repro.server.scene import SceneDatabase
from repro.sim.streams import derive_rng
from repro.store.scene import SceneDelta
from repro.wavelets.analysis import analyze_hierarchy
from repro.workloads.cityscape import CityConfig, populate_city

__all__ = [
    "dynamic_city",
    "rush_hour_deltas",
    "construction_site_deltas",
]


def dynamic_city(
    config: CityConfig,
    *,
    retained_epochs: int | None = None,
) -> SceneDatabase:
    """A :class:`SceneDatabase` holding the city as its epoch 0.

    Same generator stream as :func:`~repro.workloads.cityscape.build_city`,
    so the epoch-0 columns equal the static database's bit for bit.
    """
    kwargs = {} if retained_epochs is None else {
        "retained_epochs": retained_epochs
    }
    db = populate_city(SceneDatabase(**kwargs), config)
    assert isinstance(db, SceneDatabase)
    return db


def rush_hour_deltas(
    object_ids: Sequence[int] | np.ndarray,
    *,
    amplitude: float,
    seed: int,
    epochs: int | None = None,
) -> Callable[[int], SceneDelta | None]:
    """Oscillating commute moves over a fixed vehicle fleet.

    Each vehicle gets a seeded heading; epoch ``2k + 1`` moves the fleet
    ``amplitude`` along it and epoch ``2k + 2`` moves it back, so after
    any even number of epochs every vehicle is exactly where it parked.
    """
    ids = np.unique(np.asarray(object_ids, dtype=np.int64))
    if ids.size == 0:
        raise WorkloadError("rush hour needs at least one vehicle")
    if amplitude <= 0:
        raise WorkloadError(f"amplitude must be positive, got {amplitude}")
    rng = np.random.default_rng(seed)
    headings = rng.uniform(0.0, 2.0 * np.pi, size=ids.size)
    step = amplitude * np.stack(
        [np.cos(headings), np.sin(headings), np.zeros(ids.size)], axis=1
    )

    def next_delta(k: int) -> SceneDelta | None:
        if epochs is not None and k >= epochs:
            return None
        sign = 1.0 if k % 2 == 0 else -1.0
        return SceneDelta(move_ids=ids, move_offsets=sign * step)

    return next_delta


def construction_site_deltas(
    databases: SceneDatabase | Sequence[SceneDatabase],
    site_ids: Sequence[int] | np.ndarray,
    *,
    levels: int,
    seed: int,
    epochs: int | None = None,
) -> Callable[[int], SceneDelta | None]:
    """Round-robin re-meshing of construction sites.

    Epoch ``k + 1`` rebuilds site ``site_ids[k % len(site_ids)]``: a
    fresh procedural building anchored at the old incarnation's ground
    footprint (so the scene keeps fitting the build-time index grid),
    registered through ``register_epoch_object`` and swapped in as
    ``remesh_rows``.

    ``databases`` may be several scene databases (e.g. a monolithic one
    and a sharded one under comparison): the *same* decomposition is
    registered on each, and the rows come from the first -- keeping
    base-mesh shipping consistent everywhere the delta will be applied.
    """
    targets = (
        (databases,) if isinstance(databases, SceneDatabase)
        else tuple(databases)
    )
    if not targets:
        raise WorkloadError("need at least one database to register on")
    sites = np.asarray(site_ids, dtype=np.int64)
    if sites.size == 0:
        raise WorkloadError("construction needs at least one site")
    if levels < 1:
        raise WorkloadError("buildings need at least one detail level")

    # ``seed`` rebinds as a default so the per-epoch stream derivation
    # below is keyed off injected state rather than a closure cell.
    def next_delta(k: int, *, seed: int = seed) -> SceneDelta | None:
        if epochs is not None and k >= epochs:
            return None
        site = int(sites[k % sites.size])
        # Anchor the replacement at the current incarnation's footprint.
        data = targets[0].store.data
        mask = data["object_id"] == site
        if not mask.any():
            raise WorkloadError(f"site {site} has no rows in the scene")
        low = data["sup_low"][mask].min(axis=0)
        high = data["sup_high"][mask].max(axis=0)
        child = derive_rng(seed, k)
        span = high - low
        width = float(span[0]) * child.uniform(0.8, 1.1)
        depth = float(span[1]) * child.uniform(0.8, 1.1)
        height = max(float(span[2]), 1e-6) * child.uniform(0.8, 1.25)
        hierarchy = procedural_building(
            child,
            center=(
                float((low[0] + high[0]) / 2.0),
                float((low[1] + high[1]) / 2.0),
                0.0,
            ),
            footprint=(width, depth),
            height=height,
            levels=levels,
        )
        decomposition = analyze_hierarchy(hierarchy)
        rows = targets[0].register_epoch_object(site, decomposition)
        for other in targets[1:]:
            other.register_epoch_object(site, decomposition)
        return SceneDelta(remesh_rows=rows)

    return next_delta
