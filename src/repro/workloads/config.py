"""Experiment configuration defaults (Section VII-A) and scaling.

The paper's setup: datasets of 100/200/300/400 objects (20/40/60/80 MB,
default 60 MB), query frames of 5/10/15/20 % of the space (default
10 %), 256 Kbps / 200 ms links, buffers of 16-128 KB, tours of 10
tourists (tram and pedestrian), speeds normalised to 0.001-1.0.

Running the full-size setup in pure Python is possible but slow, so the
experiment modules default to a shape-preserving scaled configuration
and honour the ``REPRO_SCALE`` environment variable (a float; 1.0 is the
default scaled size, larger values move toward the paper's full size).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.geometry.box import Box
from repro.net.link import LinkConfig

__all__ = ["ExperimentScale", "PAPER_SPEEDS", "PAPER_QUERY_FRACS", "PAPER_BUFFER_KB"]

# The speed axis used throughout Section VII.
PAPER_SPEEDS = (0.001, 0.25, 0.5, 0.75, 1.0)

# Query frame side as a fraction of the space side (Fig. 9a / 13a).
PAPER_QUERY_FRACS = (0.05, 0.10, 0.15, 0.20)

# Buffer sizes of Fig. 10.
PAPER_BUFFER_KB = (16, 32, 64, 128)

# Dataset sizes (paper MB -> object count at full scale).
PAPER_DATASETS_MB = (20, 40, 60, 80)
_OBJECTS_PER_20MB_FULL = 100


def _env_scale() -> float:
    raw = os.environ.get("REPRO_SCALE", "1.0")
    try:
        value = float(raw)
    except ValueError as exc:
        raise ConfigurationError(f"REPRO_SCALE must be a float, got {raw!r}") from exc
    if value <= 0:
        raise ConfigurationError(f"REPRO_SCALE must be positive, got {value}")
    return value


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs shared by every experiment, derived from ``REPRO_SCALE``.

    At scale 1.0 (default): 8 objects per paper-20MB, subdivision depth
    3, 120-step tours, 3 tourists per kind.  At scale 4.0 the object
    counts and tour suite approach the paper's setup.
    """

    scale: float = field(default_factory=_env_scale)

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigurationError("scale must be positive")

    @property
    def space(self) -> Box:
        """The city ground extent (units are metres-ish; size is moot)."""
        return Box((0.0, 0.0), (1000.0, 1000.0))

    @property
    def levels(self) -> int:
        """Subdivision depth of the objects."""
        return 3

    def objects_for(self, paper_mb: int) -> int:
        """Object count standing in for the paper's ``paper_mb`` dataset."""
        if paper_mb not in PAPER_DATASETS_MB:
            raise ConfigurationError(
                f"paper dataset must be one of {PAPER_DATASETS_MB}, got {paper_mb}"
            )
        per20 = max(int(round(8 * self.scale)), 3)
        return per20 * (paper_mb // 20)

    @property
    def default_objects(self) -> int:
        """Objects for the paper's default 60 MB dataset."""
        return self.objects_for(60)

    @property
    def tour_steps(self) -> int:
        return max(int(round(120 * self.scale)), 40)

    @property
    def tours_per_kind(self) -> int:
        """Tourists per motion kind (paper: 10)."""
        return max(int(round(3 * self.scale)), 2)

    @property
    def grid_shape(self) -> tuple[int, int]:
        return (20, 20)

    @property
    def buffer_objects(self) -> int:
        """Object count for the (dense) buffer-management city."""
        return max(int(round(150 * self.scale)), 60)

    @property
    def buffer_levels(self) -> int:
        """Subdivision depth for the buffer city (shallower = denser)."""
        return 2

    @property
    def link(self) -> LinkConfig:
        """The paper's 256 Kbps / 200 ms wireless link."""
        return LinkConfig()

    def buffer_bytes(self, kb: int) -> int:
        """A Fig.-10 buffer size, scaled to our dataset density.

        The paper's buffer-to-block ratio is what matters; our scaled
        blocks are smaller than the paper's, so buffers scale down by
        the same factor to keep the ratio (16 KB paper ~ 16 KB here at
        scale 1 with depth-3 objects).
        """
        if kb <= 0:
            raise ConfigurationError(f"buffer KB must be positive, got {kb}")
        return kb * 1024
