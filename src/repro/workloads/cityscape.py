"""City dataset builder.

The paper's datasets are 100-400 3-D objects (old buildings) placed
uniformly -- and, for Figure 15, Zipfian -- over a city, giving 20-80 MB
of data (Section VII-A).  This module builds the equivalent synthetic
city: procedural buildings and landmarks wavelet-decomposed into an
:class:`~repro.server.database.ObjectDatabase`.

Object sizes follow the explicit encoding model, so "dataset MB" scales
linearly with object count exactly as in the paper; the absolute bytes
per object depend on the subdivision depth (see ``EXPERIMENTS.md`` for
the scale mapping).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.geometry.box import Box
from repro.mesh.generators import procedural_building, procedural_landmark
from repro.server.database import ObjectDatabase
from repro.wavelets.analysis import analyze_hierarchy
from repro.wavelets.encoding import DEFAULT_ENCODING, EncodingModel

__all__ = ["CityConfig", "build_city", "populate_city", "zipf_weights"]


@dataclass(frozen=True)
class CityConfig:
    """Parameters of a synthetic city dataset.

    Attributes
    ----------
    space:
        2-D ground extent of the city.
    object_count:
        Number of 3-D objects (the paper's 100-400 axis).
    levels:
        Subdivision depth of every object (detail levels ``J``).
    placement:
        ``"uniform"`` or ``"zipf"`` (clustered around hot spots with
        Zipf-distributed popularity, Figure 15's dataset).
    seed:
        Master seed; every object derives its own child seed.
    landmark_fraction:
        Share of objects generated as round landmarks instead of
        rectangular buildings.
    zipf_clusters / zipf_exponent:
        Hot-spot count and skew for Zipfian placement.
    min_size_frac / max_size_frac:
        Object footprint side as a fraction of the space side; the
        buffer experiments use larger objects so most grid blocks hold
        data, as in the paper's dense city.
    """

    space: Box
    object_count: int = 100
    levels: int = 3
    placement: str = "uniform"
    seed: int = 7
    landmark_fraction: float = 0.25
    zipf_clusters: int = 8
    zipf_exponent: float = 1.1
    min_size_frac: float = 0.008
    max_size_frac: float = 0.02

    def __post_init__(self) -> None:
        if self.space.ndim != 2:
            raise WorkloadError("city space must be 2-D")
        if self.object_count < 1:
            raise WorkloadError("need at least one object")
        if self.levels < 1:
            raise WorkloadError("objects need at least one detail level")
        if self.placement not in ("uniform", "zipf"):
            raise WorkloadError(f"unknown placement {self.placement!r}")
        if not 0.0 <= self.landmark_fraction <= 1.0:
            raise WorkloadError("landmark_fraction must be in [0, 1]")
        if self.zipf_clusters < 1:
            raise WorkloadError("need at least one zipf cluster")
        if not 0.0 < self.min_size_frac <= self.max_size_frac:
            raise WorkloadError(
                "need 0 < min_size_frac <= max_size_frac, got "
                f"{self.min_size_frac}/{self.max_size_frac}"
            )


def zipf_weights(n: int, exponent: float) -> np.ndarray:
    """Normalised Zipf probabilities ``p_i ~ 1 / i^exponent``."""
    if n < 1:
        raise WorkloadError("need n >= 1")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks**-exponent
    return weights / weights.sum()


def _object_positions(config: CityConfig, rng: np.random.Generator) -> np.ndarray:
    low = config.space.low
    high = config.space.high
    margin = 0.04 * config.space.extents
    if config.placement == "uniform":
        return rng.uniform(low + margin, high - margin, size=(config.object_count, 2))
    centers = rng.uniform(
        low + 4 * margin, high - 4 * margin, size=(config.zipf_clusters, 2)
    )
    probs = zipf_weights(config.zipf_clusters, config.zipf_exponent)
    assignment = rng.choice(config.zipf_clusters, size=config.object_count, p=probs)
    sigma = 0.06 * float(config.space.extents.min())
    positions = centers[assignment] + rng.normal(0.0, sigma, size=(config.object_count, 2))
    return np.clip(positions, low + margin, high - margin)


def build_city(
    config: CityConfig,
    *,
    encoding: EncodingModel = DEFAULT_ENCODING,
    access_method: str = "packed",
    spatial_dims: int = 2,
) -> ObjectDatabase:
    """Generate and decompose every object into a ready database."""
    return populate_city(
        ObjectDatabase(
            encoding=encoding,
            access_method=access_method,
            spatial_dims=spatial_dims,
        ),
        config,
    )


def populate_city(db: ObjectDatabase, config: CityConfig) -> ObjectDatabase:
    """Fill any (subclass of) object database with the city's objects.

    The object stream is a pure function of ``config`` -- the target
    database never touches the generator state -- so a static
    :class:`ObjectDatabase` and an epoch-versioned
    :class:`~repro.server.scene.SceneDatabase` built from the same
    config hold identical epoch-0 geometry.
    """
    rng = np.random.default_rng(config.seed)
    positions = _object_positions(config, rng)
    extent = float(config.space.extents.min())
    for oid in range(config.object_count):
        child = np.random.default_rng(rng.integers(0, 2**63))
        x, y = positions[oid]
        lo, hi = config.min_size_frac, config.max_size_frac
        if child.random() < config.landmark_fraction:
            radius = extent * child.uniform(0.75 * lo, 0.75 * hi)
            hierarchy = procedural_landmark(
                child,
                center=(float(x), float(y), radius),
                radius=radius,
                levels=config.levels,
            )
        else:
            width = extent * child.uniform(lo, hi)
            depth = extent * child.uniform(lo, hi)
            height = extent * child.uniform(1.8 * lo, 2.0 * hi)
            hierarchy = procedural_building(
                child,
                center=(float(x), float(y), 0.0),
                footprint=(width, depth),
                height=height,
                levels=config.levels,
            )
        db.add_object(oid, analyze_hierarchy(hierarchy))
    return db
