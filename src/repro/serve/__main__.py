"""Run a retrieval service over a generated cityscape.

Quickstart::

    python -m repro.serve --port 9917 --objects 16 --levels 2

then, from any asyncio program::

    from repro.geometry.box import Box
    from repro.serve import ServeClient

    client = await ServeClient.connect("127.0.0.1", 9917, client_id=1)
    response = await client.retrieve_window(
        0.0, Box((100.0, 100.0), (400.0, 400.0)), w_min=0.2
    )
    print(response.record_count, response.payload_bytes)
"""

from __future__ import annotations

import argparse
import asyncio

from repro.geometry.box import Box
from repro.serve.service import RetrieveService, ServeConfig
from repro.server.server import Server
from repro.shard import ShardCoordinator, ShardedDatabase
from repro.workloads.cityscape import CityConfig, build_city

__all__ = ["main", "build_server"]


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9917)
    parser.add_argument(
        "--objects", type=int, default=16, help="cityscape object count"
    )
    parser.add_argument(
        "--levels", type=int, default=2, help="wavelet decomposition levels"
    )
    parser.add_argument("--seed", type=int, default=11, help="cityscape seed")
    parser.add_argument(
        "--max-connections", type=int, default=1024,
        help="concurrent connection cap",
    )
    parser.add_argument(
        "--plan-deltas", action="store_true",
        help="enable per-client frame-delta planning",
    )
    parser.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="spatial shard count; N > 1 serves scatter-gather over a "
        "sharded database (responses are wire-identical)",
    )
    parser.add_argument(
        "--executor", default="auto",
        choices=("auto", "serial", "process", "shm"),
        help="shard executor: 'shm' scatters over a spawn-safe worker "
        "pool sharing the store and indexes through named shared "
        "memory (zero-copy gathers); 'auto' measures pool overhead "
        "and falls back to in-process execution when scattering "
        "cannot pay (responses are wire-identical either way)",
    )
    return parser


def build_server(args: argparse.Namespace) -> Server:
    """The configured query front end: plain server or shard coordinator."""
    city = build_city(
        CityConfig(
            space=Box((0.0, 0.0), (1000.0, 1000.0)),
            object_count=args.objects,
            levels=args.levels,
            seed=args.seed,
            min_size_frac=0.02,
            max_size_frac=0.05,
        )
    )
    if args.shards > 1:
        sharded = ShardedDatabase.from_database(
            city, args.shards, executor=args.executor
        )
        return ShardCoordinator(sharded, plan_deltas=args.plan_deltas)
    return Server(city, plan_deltas=args.plan_deltas)


async def _serve(args: argparse.Namespace) -> None:  # pragma: no cover
    server = build_server(args)
    config = ServeConfig(
        host=args.host, port=args.port, max_connections=args.max_connections
    )
    service = RetrieveService(server, config)
    await service.start()
    print(
        f"serving {server.database.record_count} coefficient records on "
        f"{args.host}:{service.port} "
        f"(plan_deltas={args.plan_deltas}, shards={args.shards}, "
        f"ctrl-c to stop)"
    )
    try:
        await service.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await service.shutdown()


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
