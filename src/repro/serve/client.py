"""Async client for the retrieval wire protocol.

A :class:`ServeClient` owns one TCP connection and supports pipelined
requests: because the server answers strictly in request order per
connection, responses are correlated FIFO -- each in-flight call holds
a future that the single reader task resolves in turn.  Concurrent
``retrieve`` calls from many coroutines are safe; writes are ordered
under a lock so a future's position in the pending queue always
matches its frame's position on the wire.

Error frames resolve the oldest pending call with a typed
:class:`~repro.errors.RemoteServeError`; connection loss fails every
pending call with :class:`~repro.errors.ServeError`.  The client never
hangs on a dead server: end-of-stream is detected by the reader task
and propagated immediately.
"""

from __future__ import annotations

import asyncio
from collections import deque

from repro.errors import RemoteServeError, ServeError
from repro.geometry.box import Box
from repro.net.messages import (
    RegionRequest,
    RetrieveBatchResponse,
    RetrieveRequest,
)
from repro.serve.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    MessageTag,
    encode_frame,
    read_frame,
)
from repro.serve.wire import (
    decode_error,
    decode_response,
    encode_request,
)
from repro.store.uids import EMPTY_UIDS, UidSet

__all__ = ["ServeClient"]


class ServeClient:
    """One pipelined protocol connection.  Build via :meth:`connect`."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        client_id: int,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._client_id = client_id
        self._max_frame_bytes = max_frame_bytes
        #: In-flight calls, oldest first: ``(expected_tag, future)``.
        self._pending: deque[tuple[int, asyncio.Future]] = deque()
        self._write_lock = asyncio.Lock()
        self._closed = False
        self._conn_error: ServeError | None = None
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        client_id: int = 0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> "ServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(
            reader,
            writer,
            client_id=client_id,
            max_frame_bytes=max_frame_bytes,
        )

    @property
    def client_id(self) -> int:
        return self._client_id

    @property
    def closed(self) -> bool:
        return self._closed

    # -- calls -------------------------------------------------------------

    async def retrieve(self, request: RetrieveRequest) -> RetrieveBatchResponse:
        """Send one request; await its (order-correlated) response."""
        frame = encode_frame(MessageTag.REQUEST, encode_request(request))
        future = await self._send(MessageTag.RESPONSE, frame)
        result = await future
        assert isinstance(result, RetrieveBatchResponse)
        return result

    async def retrieve_regions(
        self,
        timestamp: float,
        regions: tuple[RegionRequest, ...] | list[RegionRequest],
        exclude_uids: UidSet = EMPTY_UIDS,
    ) -> RetrieveBatchResponse:
        """Convenience wrapper building the request for this client id."""
        return await self.retrieve(
            RetrieveRequest(
                timestamp=timestamp,
                client_id=self._client_id,
                regions=tuple(regions),
                exclude_uids=exclude_uids,
            )
        )

    async def retrieve_window(
        self,
        timestamp: float,
        window: Box,
        w_min: float,
        w_max: float = 1.0,
        exclude_uids: UidSet = EMPTY_UIDS,
    ) -> RetrieveBatchResponse:
        """One-region retrieve of ``window`` at band ``[w_min, w_max]``."""
        return await self.retrieve_regions(
            timestamp,
            (RegionRequest(region=window, w_min=w_min, w_max=w_max),),
            exclude_uids,
        )

    async def ping(self) -> None:
        """Round-trip an empty liveness frame."""
        future = await self._send(
            MessageTag.PONG, encode_frame(MessageTag.PING, b"")
        )
        await future

    async def close(self) -> None:
        """Close the connection; in-flight calls fail with ServeError."""
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._fail_pending(ServeError("client closed"))
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # -- plumbing ----------------------------------------------------------

    async def _send(self, expected_tag: int, frame: bytes) -> asyncio.Future:
        if self._closed:
            raise ServeError("client is closed")
        if self._conn_error is not None:
            raise self._conn_error
        future = asyncio.get_running_loop().create_future()
        async with self._write_lock:
            # Append inside the lock: pending order == wire order.
            self._pending.append((expected_tag, future))
            try:
                self._writer.write(frame)
                await self._writer.drain()
            except (ConnectionError, OSError) as exc:
                self._pending.remove((expected_tag, future))
                raise ServeError(f"connection lost on send: {exc}") from exc
        return future

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await read_frame(
                    self._reader, max_frame_bytes=self._max_frame_bytes
                )
                if frame is None:
                    self._fail_pending(ServeError("server closed connection"))
                    return
                tag, payload = frame
                if tag == MessageTag.ERROR:
                    code, message = decode_error(payload)
                    error = RemoteServeError(message, code=code)
                    if self._pending:
                        _, future = self._pending.popleft()
                        if not future.done():
                            future.set_exception(error)
                    else:
                        # Unsolicited (e.g. SERVER_FULL on connect):
                        # poison the connection for later calls.
                        self._conn_error = error
                        self._fail_pending(error)
                    continue
                if not self._pending:
                    self._fail_pending(
                        ServeError(f"unsolicited frame tag {tag}")
                    )
                    return
                expected_tag, future = self._pending.popleft()
                if tag != expected_tag:
                    if not future.done():
                        future.set_exception(
                            ServeError(
                                f"out-of-order frame: got tag {tag}, "
                                f"expected {expected_tag}"
                            )
                        )
                    continue
                if future.done():
                    continue
                if tag == MessageTag.PONG:
                    future.set_result(None)
                else:
                    try:
                        future.set_result(decode_response(payload))
                    except Exception as exc:  # typed WireFormatError
                        future.set_exception(exc)
        except (ConnectionError, OSError) as exc:
            self._fail_pending(ServeError(f"connection lost: {exc}"))
        except Exception as exc:  # wire errors from read_frame
            self._fail_pending(ServeError(f"protocol failure: {exc}"))

    def _fail_pending(self, error: ServeError) -> None:
        if self._conn_error is None:
            self._conn_error = error
        while self._pending:
            _, future = self._pending.popleft()
            if not future.done():
                future.set_exception(error)
