"""Async client for the retrieval wire protocol.

A :class:`ServeClient` owns one TCP connection and supports pipelined
requests: because the server answers strictly in request order per
connection, responses are correlated FIFO -- each in-flight call holds
a future that the single reader task resolves in turn.  Concurrent
``retrieve`` calls from many coroutines are safe; writes are ordered
under a lock so a future's position in the pending queue always
matches its frame's position on the wire.

Error frames resolve the oldest pending call with a typed
:class:`~repro.errors.RemoteServeError`; connection loss fails every
pending call with :class:`~repro.errors.ServeError`.  The client never
hangs on a dead server: end-of-stream is detected by the reader task
and propagated immediately.

The client also maintains the *delivered-data cache* of the paper's
continuous-retrieval loop: every response's uids are folded into a
running :class:`~repro.store.uids.UidSet` (so a tour step can exclude
everything already shipped), and a server-pushed INVALIDATION frame --
broadcast when the scene advances an epoch -- drops the stale slice of
that cache mid-tour, so the next request transparently re-fetches the
changed objects' data.  Both updates happen on the reader task in
frame-arrival order, which is the server's send order, keeping the
cache consistent under pipelining.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Callable

from repro.errors import RemoteServeError, ServeError
from repro.geometry.box import Box
from repro.net.messages import (
    InvalidationFrame,
    RegionRequest,
    RetrieveBatchResponse,
    RetrieveRequest,
)
from repro.serve.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    MessageTag,
    encode_frame,
    read_frame,
)
from repro.serve.wire import (
    decode_error,
    decode_invalidation,
    decode_response,
    encode_request,
)
from repro.store.uids import EMPTY_UIDS, UidSet

__all__ = ["ServeClient"]


class ServeClient:
    """One pipelined protocol connection.  Build via :meth:`connect`."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        client_id: int,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        on_invalidation: (
            Callable[[InvalidationFrame], None] | None
        ) = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._client_id = client_id
        self._max_frame_bytes = max_frame_bytes
        self._on_invalidation = on_invalidation
        #: In-flight calls, oldest first: ``(expected_tag, future)``.
        self._pending: deque[tuple[int, asyncio.Future]] = deque()
        self._write_lock = asyncio.Lock()
        self._closed = False
        self._conn_error: ServeError | None = None
        #: Everything the server has shipped and not since invalidated.
        self._delivered: UidSet = EMPTY_UIDS
        #: Highest scene epoch seen on any response or invalidation.
        self._scene_epoch = 0
        #: Pushed invalidations awaiting :meth:`drain_invalidations`.
        self._invalidations: deque[InvalidationFrame] = deque()
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        client_id: int = 0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        on_invalidation: (
            Callable[[InvalidationFrame], None] | None
        ) = None,
    ) -> "ServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(
            reader,
            writer,
            client_id=client_id,
            max_frame_bytes=max_frame_bytes,
            on_invalidation=on_invalidation,
        )

    @property
    def client_id(self) -> int:
        return self._client_id

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def delivered_uids(self) -> UidSet:
        """The live cache: shipped uids minus invalidated slices."""
        return self._delivered

    @property
    def scene_epoch(self) -> int:
        """Highest scene epoch seen on any response or invalidation."""
        return self._scene_epoch

    def drain_invalidations(self) -> tuple[InvalidationFrame, ...]:
        """Pop every invalidation pushed since the last drain."""
        frames = tuple(self._invalidations)
        self._invalidations.clear()
        return frames

    # -- calls -------------------------------------------------------------

    async def retrieve(self, request: RetrieveRequest) -> RetrieveBatchResponse:
        """Send one request; await its (order-correlated) response."""
        frame = encode_frame(MessageTag.REQUEST, encode_request(request))
        future = await self._send(MessageTag.RESPONSE, frame)
        result = await future
        assert isinstance(result, RetrieveBatchResponse)
        return result

    async def retrieve_regions(
        self,
        timestamp: float,
        regions: tuple[RegionRequest, ...] | list[RegionRequest],
        exclude_uids: UidSet = EMPTY_UIDS,
    ) -> RetrieveBatchResponse:
        """Convenience wrapper building the request for this client id."""
        return await self.retrieve(
            RetrieveRequest(
                timestamp=timestamp,
                client_id=self._client_id,
                regions=tuple(regions),
                exclude_uids=exclude_uids,
            )
        )

    async def retrieve_window(
        self,
        timestamp: float,
        window: Box,
        w_min: float,
        w_max: float = 1.0,
        exclude_uids: UidSet = EMPTY_UIDS,
    ) -> RetrieveBatchResponse:
        """One-region retrieve of ``window`` at band ``[w_min, w_max]``."""
        return await self.retrieve_regions(
            timestamp,
            (RegionRequest(region=window, w_min=w_min, w_max=w_max),),
            exclude_uids,
        )

    async def retrieve_delta(
        self,
        timestamp: float,
        regions: tuple[RegionRequest, ...] | list[RegionRequest],
    ) -> RetrieveBatchResponse:
        """One tour step: fetch only what the cache does not hold.

        Excludes the client's live delivered set, so after an epoch
        invalidation dropped a stale slice the next step re-fetches
        exactly the changed objects' rows inside the view.
        """
        return await self.retrieve(
            RetrieveRequest(
                timestamp=timestamp,
                client_id=self._client_id,
                regions=tuple(regions),
                exclude_uids=self._delivered,
            )
        )

    async def ping(self) -> None:
        """Round-trip an empty liveness frame."""
        future = await self._send(
            MessageTag.PONG, encode_frame(MessageTag.PING, b"")
        )
        await future

    async def close(self) -> None:
        """Close the connection; in-flight calls fail with ServeError."""
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._fail_pending(ServeError("client closed"))
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # -- plumbing ----------------------------------------------------------

    async def _send(self, expected_tag: int, frame: bytes) -> asyncio.Future:
        if self._closed:
            raise ServeError("client is closed")
        if self._conn_error is not None:
            raise self._conn_error
        future = asyncio.get_running_loop().create_future()
        async with self._write_lock:
            # Append inside the lock: pending order == wire order.
            self._pending.append((expected_tag, future))
            try:
                self._writer.write(frame)
                await self._writer.drain()
            except (ConnectionError, OSError) as exc:
                self._pending.remove((expected_tag, future))
                raise ServeError(f"connection lost on send: {exc}") from exc
        return future

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await read_frame(
                    self._reader, max_frame_bytes=self._max_frame_bytes
                )
                if frame is None:
                    self._fail_pending(ServeError("server closed connection"))
                    return
                tag, payload = frame
                if tag == MessageTag.INVALIDATION:
                    # Server push, correlated with no pending call:
                    # apply it here so cache updates happen in frame
                    # arrival order even under pipelining.
                    self._apply_invalidation(decode_invalidation(payload))
                    continue
                if tag == MessageTag.ERROR:
                    code, message = decode_error(payload)
                    error = RemoteServeError(message, code=code)
                    if self._pending:
                        _, future = self._pending.popleft()
                        if not future.done():
                            future.set_exception(error)
                    else:
                        # Unsolicited (e.g. SERVER_FULL on connect):
                        # poison the connection for later calls.
                        self._conn_error = error
                        self._fail_pending(error)
                    continue
                if not self._pending:
                    self._fail_pending(
                        ServeError(f"unsolicited frame tag {tag}")
                    )
                    return
                expected_tag, future = self._pending.popleft()
                if tag != expected_tag:
                    if not future.done():
                        future.set_exception(
                            ServeError(
                                f"out-of-order frame: got tag {tag}, "
                                f"expected {expected_tag}"
                            )
                        )
                    continue
                if future.done():
                    continue
                if tag == MessageTag.PONG:
                    future.set_result(None)
                else:
                    try:
                        response = decode_response(payload)
                    except Exception as exc:  # typed WireFormatError
                        future.set_exception(exc)
                        continue
                    self._record_response(response)
                    future.set_result(response)
        except (ConnectionError, OSError) as exc:
            self._fail_pending(ServeError(f"connection lost: {exc}"))
        except Exception as exc:  # wire errors from read_frame
            self._fail_pending(ServeError(f"protocol failure: {exc}"))

    def _record_response(self, response: RetrieveBatchResponse) -> None:
        """Fold a response into the delivered cache (reader task only)."""
        if response.batch.count:
            self._delivered = self._delivered.union(response.batch.uids)
        if response.epoch > self._scene_epoch:
            self._scene_epoch = response.epoch

    def _apply_invalidation(self, frame: InvalidationFrame) -> None:
        """Drop the stale cache slice named by a pushed invalidation."""
        if frame.epoch > self._scene_epoch:
            self._scene_epoch = frame.epoch
        delivered = self._delivered.packed
        if delivered.size and frame.count:
            stale = delivered[frame.mask_uids(delivered)]
            if stale.size:
                self._delivered = self._delivered.difference(stale)
        self._invalidations.append(frame)
        if self._on_invalidation is not None:
            self._on_invalidation(frame)

    def _fail_pending(self, error: ServeError) -> None:
        if self._conn_error is None:
            self._conn_error = error
        while self._pending:
            _, future = self._pending.popleft()
            if not future.done():
                future.set_exception(error)
