"""Asyncio TCP service multiplexing connections onto one query server.

Promotes the in-process :class:`~repro.server.server.Server` to a
long-lived socket service.  Every connection runs two tasks:

* a **read loop** (the connection's handler task) that frames the
  inbound byte stream, runs each REQUEST through the
  :class:`~repro.serve.engine.ServeEngine` pipeline, and enqueues the
  response frame;
* a **write loop** draining a *bounded* per-connection send queue to
  the socket with flow control (``await drain()``).

Backpressure is explicit and end-to-end: when a client reads slowly,
``drain()`` blocks the write loop, the send queue fills to its bound,
the read loop blocks on ``queue.put`` and therefore stops reading the
socket, and TCP pushes back on the client.  Server memory per
connection is bounded by ``send_queue_frames`` frames plus the
transport's write buffer (capped via ``write_buffer_bytes``).

Connection lifecycle invariants:

* a connection over the ``max_connections`` limit is answered with one
  SERVER_FULL error frame and closed -- it never consumes a slot;
* malformed *framing* (bad magic, truncated stream, oversized length
  prefix) kills only that connection, after a best-effort MALFORMED
  error frame; malformed *payloads* and unknown tags inside valid
  frames are answered with an error frame and the connection lives on;
* every client id seen on a connection is released on close
  (:meth:`Server.disconnect`), freeing its shipped-base and
  frontier-planner LRU slots;
* :meth:`shutdown` drains gracefully: the listener closes, read loops
  stop, queued responses are flushed, then sockets close.  Connections
  still stuck after ``drain_grace_s`` are aborted.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.errors import (
    ConfigurationError,
    FrameTooLargeError,
    ReproError,
    WireFormatError,
)
from repro.net.messages import InvalidationFrame
from repro.serve.engine import ServeEngine
from repro.serve.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    MessageTag,
    encode_frame,
    read_frame,
)
from repro.serve.wire import ErrorCode, encode_error, encode_invalidation
from repro.server.server import Server
from repro.store.scene import SceneDelta

__all__ = ["ServeConfig", "ServiceStats", "RetrieveService"]


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one :class:`RetrieveService`."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (read it back via ``service.port``).
    port: int = 0
    #: Hard cap on concurrently served connections.
    max_connections: int = 1024
    #: Bound of each connection's send queue, in frames.
    send_queue_frames: int = 32
    #: Reject any frame whose length prefix exceeds this.
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    #: Transport write-buffer high-water mark (None keeps asyncio's).
    write_buffer_bytes: int | None = None
    #: Seconds :meth:`shutdown` waits for queued frames to flush.
    drain_grace_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_connections < 1:
            raise ConfigurationError(
                f"max_connections must be >= 1, got {self.max_connections}"
            )
        if self.send_queue_frames < 1:
            raise ConfigurationError(
                f"send_queue_frames must be >= 1, got {self.send_queue_frames}"
            )
        if self.max_frame_bytes < 1:
            raise ConfigurationError(
                f"max_frame_bytes must be >= 1, got {self.max_frame_bytes}"
            )
        if self.drain_grace_s < 0:
            raise ConfigurationError(
                f"drain_grace_s must be >= 0, got {self.drain_grace_s}"
            )


@dataclass
class ServiceStats:
    """Service-wide counters (exact: mutated only on the event loop)."""

    connections_opened: int = 0
    connections_closed: int = 0
    connections_rejected: int = 0
    frames_sent: int = 0
    wire_errors: int = 0
    request_errors: int = 0
    #: INVALIDATION frames enqueued across all connections.
    invalidations_sent: int = 0
    #: Highest send-queue depth observed on any connection; bounded by
    #: ``send_queue_frames`` by construction.
    queue_high_water: int = 0


@dataclass(eq=False)
class _Connection:
    """Per-connection state shared by the read and write loops.

    ``eq=False`` keeps identity hashing so live connections can sit in
    the service's tracking set.
    """

    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    queue: asyncio.Queue
    client_ids: set = field(default_factory=set)
    #: Set when the socket died under the write loop; frames are then
    #: drained and discarded so the read loop can never deadlock on put.
    broken: bool = False
    handler_task: asyncio.Task | None = None
    writer_task: asyncio.Task | None = None


class RetrieveService:
    """A TCP front end over one :class:`~repro.server.server.Server`.

    Usage::

        service = RetrieveService(Server(database), ServeConfig())
        await service.start()
        ...  # service.port is bound; clients may connect
        await service.shutdown()

    or as an async context manager, which starts on enter and drains
    on exit.
    """

    def __init__(self, server: Server, config: ServeConfig | None = None):
        self._engine = ServeEngine(server)
        self._config = config if config is not None else ServeConfig()
        self._listener: asyncio.AbstractServer | None = None
        self._connections: set[_Connection] = set()
        self._draining = False
        self.stats = ServiceStats()

    @property
    def engine(self) -> ServeEngine:
        return self._engine

    @property
    def config(self) -> ServeConfig:
        return self._config

    @property
    def connection_count(self) -> int:
        return len(self._connections)

    @property
    def port(self) -> int:
        """The bound TCP port (only valid after :meth:`start`)."""
        if self._listener is None or not self._listener.sockets:
            raise ConfigurationError("service is not started")
        return int(self._listener.sockets[0].getsockname()[1])

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        if self._listener is not None:
            raise ConfigurationError("service already started")
        self._listener = await asyncio.start_server(
            self._on_connection, self._config.host, self._config.port
        )

    async def serve_forever(self) -> None:
        if self._listener is None:
            raise ConfigurationError("service is not started")
        await self._listener.serve_forever()

    async def shutdown(self) -> None:
        """Stop accepting, drain queued responses, close every socket."""
        self._draining = True
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
        connections = list(self._connections)
        for conn in connections:
            if conn.handler_task is not None:
                conn.handler_task.cancel()
        handler_tasks = [
            conn.handler_task
            for conn in connections
            if conn.handler_task is not None
        ]
        if handler_tasks:
            done, pending = await asyncio.wait(
                handler_tasks, timeout=self._config.drain_grace_s
            )
            if pending:
                # Stuck flushing to unreachable peers: abort them.
                for conn in connections:
                    if conn.writer_task is not None:
                        conn.writer_task.cancel()
                    conn.writer.transport.abort()
                for task in pending:
                    task.cancel()
                await asyncio.gather(*pending, return_exceptions=True)
        self._connections.clear()

    async def __aenter__(self) -> "RetrieveService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.shutdown()

    # -- epoch push --------------------------------------------------------

    async def advance_epoch(self, delta: SceneDelta) -> InvalidationFrame:
        """Advance the server one scene epoch and notify every client.

        Runs the full server-side invalidation chain (index patch,
        planner memos, shipped-base state), then pushes one
        INVALIDATION frame per live connection so clients drop their
        stale cache slices mid-tour.  Returns the broadcast frame.
        """
        footprint = self._engine.server.advance_epoch(delta)
        frame = InvalidationFrame(
            epoch=footprint.epoch,
            changed_ids=footprint.changed_ids,
            region_low=footprint.region_low,
            region_high=footprint.region_high,
        )
        await self.broadcast_invalidation(frame)
        return frame

    async def broadcast_invalidation(self, frame: InvalidationFrame) -> int:
        """Enqueue one INVALIDATION frame on every live connection.

        Uses the same bounded send queues as responses, so a slow
        reader backpressures the broadcast instead of buffering
        unboundedly.  Returns the number of connections notified.
        """
        payload = encode_frame(
            MessageTag.INVALIDATION, encode_invalidation(frame)
        )
        notified = 0
        for conn in list(self._connections):
            await self._enqueue(conn, payload)
            notified += 1
        self.stats.invalidations_sent += notified
        return notified

    # -- connection handling -----------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._draining or len(self._connections) >= self._config.max_connections:
            await self._reject(writer)
            return
        conn = _Connection(
            reader=reader,
            writer=writer,
            queue=asyncio.Queue(maxsize=self._config.send_queue_frames),
        )
        conn.handler_task = asyncio.current_task()
        if self._config.write_buffer_bytes is not None:
            writer.transport.set_write_buffer_limits(
                high=self._config.write_buffer_bytes
            )
        self._connections.add(conn)
        self.stats.connections_opened += 1
        conn.writer_task = asyncio.get_running_loop().create_task(
            self._write_loop(conn)
        )
        try:
            await self._read_loop(conn)
        except asyncio.CancelledError:
            # Shutdown drain: stop reading, still flush what is queued.
            pass
        except (ConnectionError, OSError):
            conn.broken = True
        finally:
            await conn.queue.put(None)
            await conn.writer_task
            for client_id in conn.client_ids:
                self._engine.release_client(client_id)
            self._connections.discard(conn)
            self.stats.connections_closed += 1
            await self._close_writer(writer)

    async def _reject(self, writer: asyncio.StreamWriter) -> None:
        """One error frame and goodbye; never occupies a slot."""
        self.stats.connections_rejected += 1
        code = (
            ErrorCode.SHUTTING_DOWN if self._draining else ErrorCode.SERVER_FULL
        )
        reason = "server draining" if self._draining else "connection limit"
        try:
            writer.write(
                encode_frame(MessageTag.ERROR, encode_error(code, reason))
            )
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        await self._close_writer(writer)

    @staticmethod
    async def _close_writer(writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    # -- read side ---------------------------------------------------------

    async def _read_loop(self, conn: _Connection) -> None:
        while True:
            try:
                frame = await read_frame(
                    conn.reader, max_frame_bytes=self._config.max_frame_bytes
                )
            except (FrameTooLargeError, WireFormatError) as exc:
                # Stream-level damage: framing can no longer be trusted,
                # so answer once and close this connection only.
                self.stats.wire_errors += 1
                await self._enqueue_error(conn, ErrorCode.MALFORMED, str(exc))
                return
            if frame is None:
                return  # clean EOF between frames
            tag, payload = frame
            if tag == MessageTag.PING:
                await self._enqueue(conn, encode_frame(MessageTag.PONG, b""))
                continue
            if tag != MessageTag.REQUEST:
                # The length prefix was honoured, the stream is still in
                # sync: reject the message, keep the connection.
                self.stats.wire_errors += 1
                await self._enqueue_error(
                    conn,
                    ErrorCode.UNSUPPORTED,
                    f"unexpected message tag {tag}",
                )
                continue
            try:
                response_frame, client_id = self._engine.handle(payload)
            except WireFormatError as exc:
                self.stats.request_errors += 1
                await self._enqueue_error(conn, ErrorCode.MALFORMED, str(exc))
                continue
            except ReproError as exc:
                self.stats.request_errors += 1
                await self._enqueue_error(conn, ErrorCode.INTERNAL, str(exc))
                continue
            conn.client_ids.add(client_id)
            await self._enqueue(conn, response_frame)

    async def _enqueue(self, conn: _Connection, frame: bytes) -> None:
        """Bounded put: blocks the read loop when the peer reads slowly."""
        await conn.queue.put(frame)
        depth = conn.queue.qsize()
        if depth > self.stats.queue_high_water:
            self.stats.queue_high_water = depth

    async def _enqueue_error(
        self, conn: _Connection, code: int, message: str
    ) -> None:
        await self._enqueue(
            conn, encode_frame(MessageTag.ERROR, encode_error(code, message))
        )

    # -- write side --------------------------------------------------------

    async def _write_loop(self, conn: _Connection) -> None:
        """Drain the send queue to the socket until the sentinel.

        Never exits early on a dead socket: it keeps consuming (and
        discarding) frames so the read loop's bounded ``put`` can
        always complete -- otherwise a peer that vanished with a full
        queue would wedge its handler task forever.
        """
        while True:
            frame = await conn.queue.get()
            if frame is None:
                return
            if conn.broken:
                continue
            try:
                conn.writer.write(frame)
                await conn.writer.drain()
                self.stats.frames_sent += 1
            except (ConnectionError, OSError):
                conn.broken = True
