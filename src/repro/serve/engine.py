"""The serving engine: decode -> plan -> execute -> encode.

One :class:`ServeEngine` wraps one in-process
:class:`~repro.server.server.Server` and turns request payload bytes
into response frame bytes, mirroring the parser / planner / executor
split of a query front end:

* **decode** -- :func:`repro.serve.wire.decode_request` parses the
  framed payload into a :class:`~repro.net.messages.RetrieveRequest`
  (malformed bytes raise typed errors before any state is touched);
* **plan** -- resolves the execution strategy for this client: the
  frame-delta :class:`~repro.server.planner.FrontierPlanner` path when
  the server has one live, the cold columnar traversal otherwise;
* **execute** -- :meth:`Server.execute_batch` answers on the columnar
  path, maintaining per-client planner memos and shipped-base state;
* **encode** -- the columnar response is serialised straight from the
  store's columns into one RESPONSE frame.

The engine is transport-free and synchronous; the asyncio service
(:mod:`repro.serve.service`) calls :meth:`handle` once per REQUEST
frame.  All counters are plain ints updated on the event loop thread,
so they are exact without locks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.messages import RetrieveBatchResponse, RetrieveRequest
from repro.serve.framing import MessageTag, encode_frame
from repro.serve.wire import decode_request, encode_response
from repro.server.server import Server

__all__ = ["ServeEngine", "QueryPlan", "EngineStats"]


@dataclass(frozen=True)
class QueryPlan:
    """A decoded request bound to its execution strategy."""

    request: RetrieveRequest
    #: True when the frame-delta planner will answer the sub-queries
    #: from this client's leaf-frontier memo (warm or cold).
    delta_planned: bool

    @property
    def client_id(self) -> int:
        return self.request.client_id


@dataclass
class EngineStats:
    """Pipeline counters (exact: mutated only on the event loop)."""

    requests: int = 0
    decode_errors: int = 0
    rows_shipped: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    clients: set[int] = field(default_factory=set)


class ServeEngine:
    """Binds the wire codec to one in-process query server."""

    def __init__(self, server: Server) -> None:
        self._server = server
        self.stats = EngineStats()

    @property
    def server(self) -> Server:
        return self._server

    # -- pipeline stages ---------------------------------------------------

    def decode(self, payload: bytes) -> RetrieveRequest:
        """Parse stage: payload bytes to a validated request."""
        try:
            request = decode_request(payload)
        except Exception:
            self.stats.decode_errors += 1
            raise
        self.stats.bytes_in += len(payload)
        return request

    def plan(self, request: RetrieveRequest) -> QueryPlan:
        """Plan stage: pick the delta or cold path for this client."""
        return QueryPlan(
            request=request, delta_planned=self._server.planner is not None
        )

    def execute(self, plan: QueryPlan) -> RetrieveBatchResponse:
        """Execute stage: answer on the columnar batch path."""
        response = self._server.execute_batch(plan.request)
        self.stats.requests += 1
        self.stats.rows_shipped += response.record_count
        self.stats.clients.add(plan.client_id)
        return response

    def encode(self, response: RetrieveBatchResponse) -> bytes:
        """Encode stage: one complete RESPONSE frame."""
        frame = encode_frame(MessageTag.RESPONSE, encode_response(response))
        self.stats.bytes_out += len(frame)
        return frame

    # -- one-shot ----------------------------------------------------------

    def handle(self, payload: bytes) -> tuple[bytes, int]:
        """Run the full pipeline on one REQUEST payload.

        Returns ``(response_frame, client_id)`` so the transport can
        associate the connection with the client state it must free on
        disconnect.  Raises the stage's typed error on failure; the
        caller maps it to an ERROR frame.
        """
        request = self.decode(payload)
        plan = self.plan(request)
        response = self.execute(plan)
        return self.encode(response), plan.client_id

    def release_client(self, client_id: int) -> None:
        """Free all server-side state for a disconnected client."""
        self._server.disconnect(client_id)
