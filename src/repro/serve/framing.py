"""Frame layer of the binary wire protocol.

Every message travels inside one *frame*::

    offset  size  field
    0       2     magic   b"RW"  (Retrieval Wire)
    2       1     version protocol version, currently 2
    3       1     tag     message type (:class:`MessageTag`)
    4       4     length  payload byte count, unsigned little-endian
    8       n     payload tag-specific binary body (:mod:`repro.serve.wire`)

All integers on the wire are little-endian.  The frame layer is
deliberately dumb: it never inspects payloads, it only guarantees that
a reader either yields a complete ``(tag, payload)`` pair or raises a
typed :mod:`repro.errors` exception -- truncated streams, bad magic,
foreign versions, and oversized length prefixes can never hang a
connection or leak into payload decoding.

The length prefix is checked against ``max_frame_bytes`` *before* any
allocation, so a peer advertising a multi-gigabyte frame costs the
server eight header bytes, not memory.
"""

from __future__ import annotations

import asyncio
import enum
import struct

from repro.errors import FrameTooLargeError, WireFormatError

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "HEADER_SIZE",
    "DEFAULT_MAX_FRAME_BYTES",
    "MessageTag",
    "encode_frame",
    "parse_header",
    "decode_frame",
    "read_frame",
]

#: First two bytes of every frame.
MAGIC = b"RW"

#: Wire protocol version this codec speaks.  Version 2 added the epoch
#: field to requests and responses and the INVALIDATION push frame.
PROTOCOL_VERSION = 2

_HEADER = struct.Struct("<2sBBI")

#: Bytes of the fixed frame header.
HEADER_SIZE = _HEADER.size

#: Default cap on one frame's payload (requests and responses both).
DEFAULT_MAX_FRAME_BYTES = 16 * 1024 * 1024


class MessageTag(enum.IntEnum):
    """Message types multiplexed over one connection."""

    REQUEST = 1  #: client -> server, a RetrieveRequest
    RESPONSE = 2  #: server -> client, a RetrieveBatchResponse
    ERROR = 3  #: server -> client, (code, message)
    PING = 4  #: client -> server, empty liveness probe
    PONG = 5  #: server -> client, empty liveness answer
    BATCH = 6  #: a standalone CoefficientBatch (tooling/replay, not RPC)
    INVALIDATION = 7  #: server -> client, pushed epoch-change notice


def encode_frame(tag: int, payload: bytes) -> bytes:
    """One complete frame: header plus payload."""
    return _HEADER.pack(MAGIC, PROTOCOL_VERSION, int(tag), len(payload)) + payload


def parse_header(
    header: bytes, *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> tuple[int, int]:
    """Validate a frame header, returning ``(tag, payload_length)``.

    The tag is *not* required to be a known :class:`MessageTag`: an
    unknown tag is a recoverable condition (the payload length is still
    trustworthy, so the stream stays in sync) and is left to the
    dispatch layer to reject with a typed error.
    """
    if len(header) != HEADER_SIZE:
        raise WireFormatError(
            f"frame header needs {HEADER_SIZE} bytes, got {len(header)}"
        )
    magic, version, tag, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise WireFormatError(f"bad frame magic {magic!r}, want {MAGIC!r}")
    if version != PROTOCOL_VERSION:
        raise WireFormatError(
            f"unsupported protocol version {version}, speak {PROTOCOL_VERSION}"
        )
    if length > max_frame_bytes:
        raise FrameTooLargeError(
            f"frame of {length} bytes exceeds the {max_frame_bytes}-byte cap"
        )
    return tag, length


def decode_frame(
    buffer: bytes, *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> tuple[int, bytes, int]:
    """Split one frame off a byte buffer (sans-I/O twin of :func:`read_frame`).

    Returns ``(tag, payload, bytes_consumed)``.  Raises
    :class:`WireFormatError` when the buffer holds less than one
    complete frame -- framing over a byte string is all-or-nothing.
    """
    if len(buffer) < HEADER_SIZE:
        raise WireFormatError(
            f"truncated frame header: {len(buffer)} of {HEADER_SIZE} bytes"
        )
    tag, length = parse_header(
        buffer[:HEADER_SIZE], max_frame_bytes=max_frame_bytes
    )
    end = HEADER_SIZE + length
    if len(buffer) < end:
        raise WireFormatError(
            f"truncated frame payload: {len(buffer) - HEADER_SIZE} of "
            f"{length} bytes"
        )
    return tag, buffer[HEADER_SIZE:end], end


async def read_frame(
    reader: asyncio.StreamReader,
    *,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> tuple[int, bytes] | None:
    """Read one frame from a stream.

    Returns ``None`` on a clean end-of-stream (the peer closed between
    frames).  EOF *inside* a frame raises :class:`WireFormatError`, an
    advertised length over ``max_frame_bytes`` raises
    :class:`FrameTooLargeError` -- before the payload is read.
    """
    try:
        header = await reader.readexactly(HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise WireFormatError(
            f"connection closed mid-header ({len(exc.partial)} of "
            f"{HEADER_SIZE} bytes)"
        ) from exc
    tag, length = parse_header(header, max_frame_bytes=max_frame_bytes)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise WireFormatError(
            f"connection closed mid-frame ({len(exc.partial)} of "
            f"{length} payload bytes)"
        ) from exc
    return tag, payload
