"""Binary payload codec for the retrieval wire protocol.

Gives the existing :mod:`repro.net.messages` wire types a *real* byte
representation.  The design rule is the same one the columnar data path
follows in RAM: messages travel as **columns, not objects**.  A
:class:`~repro.net.messages.CoefficientBatch` serialises as seven flat
numpy column blobs (packed uids, values, support bounds, positions,
payload vectors, sizes); the receiver re-bases them onto a fresh
:class:`~repro.store.columns.CoefficientStore` holding exactly the
shipped rows, so ``from_bytes(to_bytes(msg)) == msg`` under the
batch's content equality and decoding a million-coefficient response
is a handful of ``np.frombuffer`` calls, not a parse loop.

Payload grammar (all integers little-endian; ``f64[n]`` is a raw
column of ``n`` doubles)::

    region    := u8 ndim, f64[ndim] low, f64[ndim] high,
                 f64 w_min, f64 w_max, u8 half_open
    request   := f64 timestamp, i64 client_id, i64 epoch,
                 u32 n_regions, region*, u32 n_exclude, i64[n_exclude]
    mesh      := u32 n_vertices, u32 n_faces,
                 f64[n_vertices*3], i64[n_faces*3]
    base      := i64 object_id, i64 size_bytes, mesh
    batch     := u32 n_rows, i64[n] uids, f64[n] w, f64[n*3] sup_low,
                 f64[n*3] sup_high, f64[n*3] position, f64[n*3] payload,
                 i64[n] size_bytes
    response  := request, u32 n_bases, base*, batch,
                 i64 io_node_reads, i64 filtered_out, i64 epoch
    invalidation := i64 epoch, u32 n_changed, i64[n] changed_ids,
                 f64[n*3] region_low, f64[n*3] region_high
    error     := u16 code, u32 n_bytes, utf8[n_bytes]

The request ``epoch`` pins the scene version the answer must be
consistent with (:data:`~repro.net.messages.LATEST_EPOCH` = ``-1``
means "whatever the server is at"); the response ``epoch`` reports
the version actually answered.  An invalidation payload is the
server-pushed notice that the scene advanced (see
:class:`~repro.net.messages.InvalidationFrame`).

Every decoder is *total* over arbitrary bytes: any malformed input --
truncation, trailing garbage, out-of-range counts, non-finite floats,
invalid geometry -- raises :class:`~repro.errors.WireFormatError`
(semantic validation failures from the message constructors are
wrapped, preserving the cause).  Nothing here ever raises a bare
``struct.error`` or hangs.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import ReproError, WireFormatError
from repro.geometry.box import Box
from repro.mesh.trimesh import TriMesh
from repro.net.messages import (
    LATEST_EPOCH,
    BaseMeshPayload,
    CoefficientBatch,
    InvalidationFrame,
    RegionRequest,
    RetrieveBatchResponse,
    RetrieveRequest,
)
from repro.serve.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    MessageTag,
    decode_frame,
    encode_frame,
)
from repro.store.columns import COEFF_DTYPE, CoefficientStore
from repro.store.uids import UidSet, unpack_uid_arrays

__all__ = [
    "ErrorCode",
    "to_bytes",
    "from_bytes",
    "encode_request",
    "decode_request",
    "encode_response",
    "decode_response",
    "encode_batch",
    "decode_batch",
    "encode_invalidation",
    "decode_invalidation",
    "encode_error",
    "decode_error",
]

_I64 = np.dtype("<i8")
_F64 = np.dtype("<f8")

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_I64S = struct.Struct("<q")
_F64S = struct.Struct("<d")

#: Sanity cap on per-message element counts (regions, meshes) that the
#: frame-size cap alone would let grow into parse-time DoS.
_MAX_REGIONS = 4096


class ErrorCode:
    """Error-frame codes (u16 on the wire)."""

    MALFORMED = 1  #: the request could not be decoded
    UNSUPPORTED = 2  #: unknown message tag or protocol feature
    SERVER_FULL = 3  #: connection-count limit reached
    SHUTTING_DOWN = 4  #: server is draining; no new requests
    INTERNAL = 5  #: request decoded but execution failed


class _Cursor:
    """Bounds-checked reader over one payload buffer.

    Every read validates the remaining byte count *before* touching
    (or allocating for) the data, so truncated and lying inputs fail
    fast with a typed error.
    """

    __slots__ = ("_view", "_pos")

    def __init__(self, payload: bytes) -> None:
        self._view = memoryview(payload)
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._view) - self._pos

    def take(self, count: int) -> memoryview:
        if count < 0 or count > self.remaining:
            raise WireFormatError(
                f"truncated payload: need {count} bytes at offset "
                f"{self._pos}, have {self.remaining}"
            )
        view = self._view[self._pos : self._pos + count]
        self._pos += count
        return view

    def unpack(self, fmt: struct.Struct) -> tuple:
        return fmt.unpack(self.take(fmt.size))

    def take_array(self, dtype: np.dtype, count: int) -> np.ndarray:
        """A copied (writable, native-order) array of ``count`` items."""
        raw = self.take(count * dtype.itemsize)
        return np.frombuffer(raw, dtype=dtype).astype(dtype.newbyteorder("="))

    def finish(self) -> None:
        if self.remaining:
            raise WireFormatError(
                f"{self.remaining} trailing bytes after message payload"
            )


def _column_bytes(array: np.ndarray, dtype: np.dtype) -> bytes:
    return np.ascontiguousarray(array, dtype=dtype).tobytes()


def _finite_or_raise(array: np.ndarray, what: str) -> np.ndarray:
    if array.size and not bool(np.all(np.isfinite(array))):
        raise WireFormatError(f"non-finite float in {what}")
    return array


# -- regions / requests ------------------------------------------------------


def _encode_region(out: bytearray, region: RegionRequest) -> None:
    box = region.region
    out += _U8.pack(box.ndim)
    out += _column_bytes(box.low, _F64)
    out += _column_bytes(box.high, _F64)
    out += _F64S.pack(region.w_min)
    out += _F64S.pack(region.w_max)
    out += _U8.pack(1 if region.half_open else 0)


def _decode_region(cur: _Cursor) -> RegionRequest:
    (ndim,) = cur.unpack(_U8)
    if not 1 <= ndim <= 4:
        raise WireFormatError(f"region dimensionality {ndim} outside [1, 4]")
    low = cur.take_array(_F64, ndim)
    high = cur.take_array(_F64, ndim)
    (w_min,) = cur.unpack(_F64S)
    (w_max,) = cur.unpack(_F64S)
    (half_open,) = cur.unpack(_U8)
    if half_open not in (0, 1):
        raise WireFormatError(f"half_open flag must be 0 or 1, got {half_open}")
    return RegionRequest(
        region=Box(low, high),
        w_min=w_min,
        w_max=w_max,
        half_open=bool(half_open),
    )


def encode_request(request: RetrieveRequest) -> bytes:
    """Serialise one :class:`RetrieveRequest` payload (no frame header)."""
    out = bytearray()
    out += _F64S.pack(request.timestamp)
    out += _I64S.pack(request.client_id)
    out += _I64S.pack(request.epoch)
    out += _U32.pack(len(request.regions))
    for region in request.regions:
        _encode_region(out, region)
    exclude = request.exclude_uids.packed
    out += _U32.pack(exclude.size)
    out += _column_bytes(exclude, _I64)
    return bytes(out)


def _decode_request_cursor(cur: _Cursor) -> RetrieveRequest:
    (timestamp,) = cur.unpack(_F64S)
    if not np.isfinite(timestamp):
        raise WireFormatError(f"non-finite request timestamp {timestamp}")
    (client_id,) = cur.unpack(_I64S)
    (epoch,) = cur.unpack(_I64S)
    if epoch < LATEST_EPOCH:
        raise WireFormatError(
            f"request epoch {epoch} below the {LATEST_EPOCH} sentinel"
        )
    (n_regions,) = cur.unpack(_U32)
    if not 1 <= n_regions <= _MAX_REGIONS:
        raise WireFormatError(
            f"request region count {n_regions} outside [1, {_MAX_REGIONS}]"
        )
    regions = tuple(_decode_region(cur) for _ in range(n_regions))
    (n_exclude,) = cur.unpack(_U32)
    exclude = cur.take_array(_I64, n_exclude)
    if exclude.size and int(exclude.min()) < 0:
        raise WireFormatError("negative packed uid in exclude set")
    return RetrieveRequest(
        timestamp=timestamp,
        client_id=int(client_id),
        regions=regions,
        exclude_uids=UidSet.from_packed(exclude),
        epoch=int(epoch),
    )


def decode_request(payload: bytes) -> RetrieveRequest:
    """Parse one request payload; malformed bytes raise typed errors."""
    with _wire_errors("request"):
        cur = _Cursor(payload)
        request = _decode_request_cursor(cur)
        cur.finish()
        return request


# -- batches / base meshes / responses ---------------------------------------


def encode_batch(batch: CoefficientBatch) -> bytes:
    """Serialise one :class:`CoefficientBatch` payload (no frame header)."""
    out = bytearray()
    _encode_batch(out, batch)
    return bytes(out)


def _encode_batch(out: bytearray, batch: CoefficientBatch) -> None:
    store = batch.store
    rows = batch.rows
    out += _U32.pack(rows.size)
    out += _column_bytes(store.packed_uids[rows], _I64)
    out += _column_bytes(store.values[rows], _F64)
    out += _column_bytes(store.support_low[rows], _F64)
    out += _column_bytes(store.support_high[rows], _F64)
    out += _column_bytes(store.positions[rows], _F64)
    out += _column_bytes(store.payloads[rows], _F64)
    out += _column_bytes(store.sizes[rows], _I64)


def _decode_batch_cursor(cur: _Cursor) -> CoefficientBatch:
    (n,) = cur.unpack(_U32)
    packed = cur.take_array(_I64, n)
    if packed.size and int(packed.min()) < 0:
        raise WireFormatError("negative packed uid in batch")
    data = np.zeros(n, dtype=COEFF_DTYPE)
    oid, level, index = unpack_uid_arrays(packed)
    data["object_id"] = oid
    data["level"] = level
    data["index"] = index
    data["w"] = _finite_or_raise(cur.take_array(_F64, n), "batch values")
    data["sup_low"] = _finite_or_raise(
        cur.take_array(_F64, 3 * n), "batch support bounds"
    ).reshape(n, 3)
    data["sup_high"] = _finite_or_raise(
        cur.take_array(_F64, 3 * n), "batch support bounds"
    ).reshape(n, 3)
    data["position"] = _finite_or_raise(
        cur.take_array(_F64, 3 * n), "batch positions"
    ).reshape(n, 3)
    data["payload"] = _finite_or_raise(
        cur.take_array(_F64, 3 * n), "batch payloads"
    ).reshape(n, 3)
    data["size_bytes"] = cur.take_array(_I64, n)
    if n and int(data["size_bytes"].min()) < 0:
        raise WireFormatError("negative wire size in batch")
    # Re-base onto a store holding exactly the shipped rows; the store
    # re-packs the uid columns, rejecting out-of-range components.
    return CoefficientBatch(
        store=CoefficientStore(data), rows=np.arange(n, dtype=np.int64)
    )


def decode_batch(payload: bytes) -> CoefficientBatch:
    """Parse one batch payload; malformed bytes raise typed errors."""
    with _wire_errors("batch"):
        cur = _Cursor(payload)
        batch = _decode_batch_cursor(cur)
        cur.finish()
        return batch


def _encode_base(out: bytearray, base: BaseMeshPayload) -> None:
    out += _I64S.pack(base.object_id)
    out += _I64S.pack(base.size_bytes)
    mesh = base.mesh
    out += _U32.pack(mesh.vertex_count)
    out += _U32.pack(mesh.face_count)
    out += _column_bytes(mesh.vertices, _F64)
    out += _column_bytes(mesh.faces, _I64)


def _decode_base(cur: _Cursor) -> BaseMeshPayload:
    (object_id,) = cur.unpack(_I64S)
    (size_bytes,) = cur.unpack(_I64S)
    (n_vertices,) = cur.unpack(_U32)
    (n_faces,) = cur.unpack(_U32)
    vertices = cur.take_array(_F64, 3 * n_vertices).reshape(n_vertices, 3)
    faces = cur.take_array(_I64, 3 * n_faces).reshape(n_faces, 3)
    return BaseMeshPayload(
        object_id=int(object_id),
        mesh=TriMesh(vertices, faces),
        size_bytes=int(size_bytes),
    )


def encode_response(response: RetrieveBatchResponse) -> bytes:
    """Serialise one :class:`RetrieveBatchResponse` payload."""
    out = bytearray()
    out += encode_request(response.request)
    out += _U32.pack(len(response.base_meshes))
    for base in response.base_meshes:
        _encode_base(out, base)
    _encode_batch(out, response.batch)
    out += _I64S.pack(response.io_node_reads)
    out += _I64S.pack(response.filtered_out)
    out += _I64S.pack(response.epoch)
    return bytes(out)


def decode_response(payload: bytes) -> RetrieveBatchResponse:
    """Parse one response payload; malformed bytes raise typed errors."""
    with _wire_errors("response"):
        cur = _Cursor(payload)
        request = _decode_request_cursor(cur)
        (n_bases,) = cur.unpack(_U32)
        if n_bases > _MAX_REGIONS:
            raise WireFormatError(
                f"response base-mesh count {n_bases} exceeds {_MAX_REGIONS}"
            )
        bases = tuple(_decode_base(cur) for _ in range(n_bases))
        batch = _decode_batch_cursor(cur)
        (io_node_reads,) = cur.unpack(_I64S)
        (filtered_out,) = cur.unpack(_I64S)
        (epoch,) = cur.unpack(_I64S)
        cur.finish()
        if io_node_reads < 0 or filtered_out < 0:
            raise WireFormatError("negative response accounting counter")
        if epoch < 0:
            raise WireFormatError(f"negative response epoch {epoch}")
        return RetrieveBatchResponse(
            request=request,
            base_meshes=bases,
            batch=batch,
            io_node_reads=int(io_node_reads),
            filtered_out=int(filtered_out),
            epoch=int(epoch),
        )


# -- invalidation frames -----------------------------------------------------


def encode_invalidation(frame: InvalidationFrame) -> bytes:
    """Serialise one :class:`InvalidationFrame` payload (no frame header)."""
    out = bytearray()
    out += _I64S.pack(frame.epoch)
    out += _U32.pack(frame.count)
    out += _column_bytes(frame.changed_ids, _I64)
    out += _column_bytes(frame.region_low, _F64)
    out += _column_bytes(frame.region_high, _F64)
    return bytes(out)


def decode_invalidation(payload: bytes) -> InvalidationFrame:
    """Parse one invalidation payload; malformed bytes raise typed errors."""
    with _wire_errors("invalidation"):
        cur = _Cursor(payload)
        (epoch,) = cur.unpack(_I64S)
        if epoch < 0:
            raise WireFormatError(f"negative invalidation epoch {epoch}")
        (n,) = cur.unpack(_U32)
        changed_ids = cur.take_array(_I64, n)
        if changed_ids.size and int(changed_ids.min()) < 0:
            raise WireFormatError("negative object id in invalidation")
        region_low = _finite_or_raise(
            cur.take_array(_F64, 3 * n), "invalidation bounds"
        ).reshape(n, 3)
        region_high = _finite_or_raise(
            cur.take_array(_F64, 3 * n), "invalidation bounds"
        ).reshape(n, 3)
        cur.finish()
        return InvalidationFrame(
            epoch=int(epoch),
            changed_ids=changed_ids,
            region_low=region_low,
            region_high=region_high,
        )


# -- error frames ------------------------------------------------------------


def encode_error(code: int, message: str) -> bytes:
    """Serialise one error payload."""
    raw = message.encode("utf-8")
    return _U16.pack(code) + _U32.pack(len(raw)) + raw


def decode_error(payload: bytes) -> tuple[int, str]:
    """Parse one error payload into ``(code, message)``."""
    with _wire_errors("error"):
        cur = _Cursor(payload)
        (code,) = cur.unpack(_U16)
        (n,) = cur.unpack(_U32)
        raw = bytes(cur.take(n))
        cur.finish()
        try:
            message = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError(f"error message is not utf-8: {exc}") from exc
        return int(code), message


# -- framed convenience entry points -----------------------------------------


def to_bytes(
    message: (
        RetrieveRequest
        | RetrieveBatchResponse
        | CoefficientBatch
        | InvalidationFrame
    ),
) -> bytes:
    """One complete frame (header + payload) for a wire message."""
    if isinstance(message, RetrieveRequest):
        return encode_frame(MessageTag.REQUEST, encode_request(message))
    if isinstance(message, RetrieveBatchResponse):
        return encode_frame(MessageTag.RESPONSE, encode_response(message))
    if isinstance(message, CoefficientBatch):
        return encode_frame(MessageTag.BATCH, encode_batch(message))
    if isinstance(message, InvalidationFrame):
        return encode_frame(
            MessageTag.INVALIDATION, encode_invalidation(message)
        )
    raise WireFormatError(
        f"no wire encoding for {type(message).__name__!r}"
    )


def from_bytes(
    frame: bytes, *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> (
    RetrieveRequest
    | RetrieveBatchResponse
    | CoefficientBatch
    | InvalidationFrame
):
    """Parse one complete frame back into its message object.

    The whole buffer must be exactly one frame; unknown tags and
    error frames raise :class:`WireFormatError`.
    """
    tag, payload, consumed = decode_frame(frame, max_frame_bytes=max_frame_bytes)
    if consumed != len(frame):
        raise WireFormatError(
            f"{len(frame) - consumed} trailing bytes after frame"
        )
    if tag == MessageTag.REQUEST:
        return decode_request(payload)
    if tag == MessageTag.RESPONSE:
        return decode_response(payload)
    if tag == MessageTag.BATCH:
        return decode_batch(payload)
    if tag == MessageTag.INVALIDATION:
        return decode_invalidation(payload)
    raise WireFormatError(f"unknown or non-message frame tag {tag}")


class _wire_errors:
    """Context manager normalising decode failures to wire errors.

    Structural failures already raise :class:`WireFormatError`; this
    wraps the *semantic* validation errors raised by message and
    geometry constructors (inverted boxes, bad bands, uid overflow...)
    and any escaping ``struct``/numpy error, preserving the cause.
    """

    __slots__ = ("_what",)

    def __init__(self, what: str) -> None:
        self._what = what

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        if exc is None or isinstance(exc, WireFormatError):
            return False
        if isinstance(exc, (ReproError, struct.error, ValueError)):
            raise WireFormatError(f"malformed {self._what}: {exc}") from exc
        return False
