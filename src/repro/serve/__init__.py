"""Async socket serving of the motion-aware retrieval pipeline.

The :mod:`repro.serve` package turns the in-process
:class:`~repro.server.server.Server` into a deployable network
service:

* :mod:`repro.serve.framing` -- the frame layer: versioned header,
  length-prefixed frames, typed errors for anything malformed;
* :mod:`repro.serve.wire` -- the payload codec: columnar
  ``to_bytes`` / ``from_bytes`` for the :mod:`repro.net.messages`
  wire types;
* :mod:`repro.serve.engine` -- the decode -> plan -> execute -> encode
  pipeline over one query server;
* :mod:`repro.serve.service` -- the asyncio TCP server: bounded send
  queues, connection limits, graceful drain;
* :mod:`repro.serve.client` -- the pipelined async client.

Run a demo server with ``python -m repro.serve``.
"""

from repro.serve.client import ServeClient
from repro.serve.engine import EngineStats, QueryPlan, ServeEngine
from repro.serve.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    HEADER_SIZE,
    MAGIC,
    PROTOCOL_VERSION,
    MessageTag,
    decode_frame,
    encode_frame,
    parse_header,
    read_frame,
)
from repro.serve.service import RetrieveService, ServeConfig, ServiceStats
from repro.serve.wire import (
    ErrorCode,
    decode_batch,
    decode_error,
    decode_invalidation,
    decode_request,
    decode_response,
    encode_batch,
    encode_error,
    encode_invalidation,
    encode_request,
    encode_response,
    from_bytes,
    to_bytes,
)

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "HEADER_SIZE",
    "DEFAULT_MAX_FRAME_BYTES",
    "MessageTag",
    "ErrorCode",
    "encode_frame",
    "parse_header",
    "decode_frame",
    "read_frame",
    "to_bytes",
    "from_bytes",
    "encode_request",
    "decode_request",
    "encode_response",
    "decode_response",
    "encode_batch",
    "decode_batch",
    "encode_invalidation",
    "decode_invalidation",
    "encode_error",
    "decode_error",
    "ServeEngine",
    "QueryPlan",
    "EngineStats",
    "RetrieveService",
    "ServeConfig",
    "ServiceStats",
    "ServeClient",
]
