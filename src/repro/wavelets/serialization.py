"""Binary wire format for wavelet-decomposed objects.

The :class:`~repro.wavelets.encoding.EncodingModel` *prices* records;
this module actually produces the bytes, proving the price list honest:

* object header (32 bytes): magic/version, object id, level count, base
  vertex/face counts, quantisation scale;
* base vertex (16 bytes): 3 x float32 position + uint32 vertex id;
* face (12 bytes): 3 x uint32 indices;
* detail coefficient (12 bytes): 3 x int16 quantised displacement +
  uint16 level + uint32 index.

Displacements are quantised against the object-wide maximum magnitude
(int16 grid), which is the compact progressive-transmission coding the
paper credits wavelets with.  ``deserialize`` rebuilds the full
multi-resolution object -- topology comes from re-subdividing the base
mesh, so only the base connectivity ever crosses the wire.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import WaveletError
from repro.mesh.generators import DeformedHierarchy, DeformedLevel
from repro.mesh.subdivision import midpoint_subdivide
from repro.mesh.trimesh import TriMesh
from repro.wavelets.analysis import WaveletDecomposition, analyze_hierarchy

__all__ = ["serialize_decomposition", "deserialize_decomposition", "WIRE_MAGIC"]

WIRE_MAGIC = 0x3D57  # "=W" -- 3D Wavelet
_WIRE_VERSION = 1

_HEADER = struct.Struct("<HHIHHIIf8x")  # 32 bytes
_BASE_VERTEX = struct.Struct("<fffI")   # 16 bytes
_FACE = struct.Struct("<III")           # 12 bytes
_COEFFICIENT = struct.Struct("<hhhHI")  # 12 bytes

_QUANT_STEPS = 32760  # leave headroom below int16 max


def serialize_decomposition(
    decomposition: WaveletDecomposition, object_id: int
) -> bytes:
    """Encode an object into the wire format."""
    if object_id < 0 or object_id > 0xFFFFFFFF:
        raise WaveletError(f"object id {object_id} out of uint32 range")
    base = decomposition.base
    levels = decomposition.levels
    max_mag = 0.0
    for level in levels:
        if level.count:
            max_mag = max(max_mag, float(np.abs(level.displacements).max()))
    scale = max_mag / _QUANT_STEPS if max_mag > 0 else 1.0

    total_coeffs = decomposition.detail_count
    parts = [
        _HEADER.pack(
            WIRE_MAGIC,
            _WIRE_VERSION,
            object_id,
            len(levels),
            base.vertex_count,
            base.face_count,
            total_coeffs,
            scale,
        )
    ]
    for vi in range(base.vertex_count):
        x, y, z = (float(v) for v in base.vertices[vi])
        parts.append(_BASE_VERTEX.pack(x, y, z, vi))
    for a, b, c in base.faces:
        parts.append(_FACE.pack(int(a), int(b), int(c)))
    for j, level in enumerate(levels):
        quantised = np.round(level.displacements / scale).astype(np.int64)
        if np.any(np.abs(quantised) > 32767):
            raise WaveletError("quantisation overflow; corrupted magnitudes")
        for i in range(level.count):
            qx, qy, qz = (int(q) for q in quantised[i])
            parts.append(_COEFFICIENT.pack(qx, qy, qz, j, i))
    return b"".join(parts)


def deserialize_decomposition(data: bytes) -> tuple[int, WaveletDecomposition]:
    """Decode the wire format back into a decomposition.

    Returns ``(object_id, decomposition)``.  Geometry is exact up to the
    int16 quantisation grid.
    """
    if len(data) < _HEADER.size:
        raise WaveletError("truncated header")
    (
        magic,
        version,
        object_id,
        level_count,
        vertex_count,
        face_count,
        total_coeffs,
        scale,
    ) = _HEADER.unpack_from(data, 0)
    if magic != WIRE_MAGIC:
        raise WaveletError(f"bad magic 0x{magic:04X}")
    if version != _WIRE_VERSION:
        raise WaveletError(f"unsupported version {version}")
    offset = _HEADER.size

    expected = (
        offset
        + vertex_count * _BASE_VERTEX.size
        + face_count * _FACE.size
        + total_coeffs * _COEFFICIENT.size
    )
    if len(data) != expected:
        raise WaveletError(
            f"payload length {len(data)} does not match header ({expected})"
        )

    vertices = np.empty((vertex_count, 3))
    for vi in range(vertex_count):
        x, y, z, stored_id = _BASE_VERTEX.unpack_from(data, offset)
        if stored_id != vi:
            raise WaveletError(f"vertex id {stored_id} out of order (want {vi})")
        vertices[vi] = (x, y, z)
        offset += _BASE_VERTEX.size
    faces = np.empty((face_count, 3), dtype=int)
    for fi in range(face_count):
        faces[fi] = _FACE.unpack_from(data, offset)
        offset += _FACE.size
    base = TriMesh(vertices, faces)

    per_level: dict[int, dict[int, np.ndarray]] = {}
    for _ in range(total_coeffs):
        qx, qy, qz, level, index = _COEFFICIENT.unpack_from(data, offset)
        offset += _COEFFICIENT.size
        if level >= level_count:
            raise WaveletError(f"coefficient level {level} >= {level_count}")
        per_level.setdefault(level, {})[index] = (
            np.array([qx, qy, qz], dtype=float) * scale
        )

    # Rebuild the deformed hierarchy by re-subdividing and applying the
    # decoded displacements, then re-analyse (recomputing values and
    # support regions from the actual geometry).
    current = base
    rebuilt_levels: list[DeformedLevel] = []
    for j in range(level_count):
        step = midpoint_subdivide(current)
        entries = per_level.get(j, {})
        displacements = np.zeros((step.inserted_count, 3))
        for index, disp in entries.items():
            if index >= step.inserted_count:
                raise WaveletError(
                    f"coefficient index {index} invalid at level {j}"
                )
            displacements[index] = disp
        fine_vertices = step.fine.vertices.copy()
        fine_vertices[current.vertex_count:] += displacements
        deformed = step.fine.with_vertices(fine_vertices)
        rebuilt_levels.append(
            DeformedLevel(
                step=step, displacements=displacements, deformed_fine=deformed
            )
        )
        current = deformed
    hierarchy = DeformedHierarchy(base=base, levels=tuple(rebuilt_levels))
    return object_id, analyze_hierarchy(hierarchy)
