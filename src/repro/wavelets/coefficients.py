"""Wavelet coefficient records.

A wavelet decomposition of an object yields a base mesh plus per-level
detail coefficients.  For storage and indexing the system flattens both
into uniform :class:`CoefficientRecord` rows:

* ``BASE`` records -- one per base-mesh vertex.  The paper assigns the
  coarsest version of an object the maximum value ``w = 1.0`` ("all the
  vertices in the coarsest version of an object have coefficient values
  1.0"), so base records are always retrieved whatever the client speed.
* ``DETAIL`` records -- one per inserted vertex per level, carrying the
  displacement vector, its normalised magnitude ``w`` in ``[0, 1]``, and
  the MBB of the coefficient's *support region* (the part of the surface
  the coefficient influences, Section VI-A).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import WaveletError
from repro.geometry.box import Box

__all__ = ["CoefficientKind", "CoefficientKey", "CoefficientRecord"]


class CoefficientKind(enum.Enum):
    """Whether a record belongs to the base mesh or a detail level."""

    BASE = "base"
    DETAIL = "detail"


@dataclass(frozen=True, order=True)
class CoefficientKey:
    """Stable identity of a coefficient within one object.

    ``level`` is ``-1`` for base-mesh vertices and ``0 .. J-1`` for
    detail levels (level ``j`` holds the details that turn ``M^j`` into
    ``M^{j+1}``).  ``index`` is the position within the level.
    """

    level: int
    index: int

    def __post_init__(self) -> None:
        if self.level < -1:
            raise WaveletError(f"level must be >= -1, got {self.level}")
        if self.index < 0:
            raise WaveletError(f"index must be >= 0, got {self.index}")

    @property
    def is_base(self) -> bool:
        return self.level == -1


@dataclass(frozen=True)
class CoefficientRecord:
    """One indexed wavelet coefficient (or base vertex) of one object.

    Attributes
    ----------
    object_id:
        Database id of the owning object.
    key:
        Level/index identity within the object.
    kind:
        BASE or DETAIL.
    position:
        3-D position of the associated vertex (detail: the deformed
        inserted vertex; base: the base-mesh vertex).
    value:
        Normalised coefficient value ``w`` in ``[0, 1]``; 1.0 for base.
    support_box:
        MBB of the support region -- the region of the surface this
        coefficient contributes to during reconstruction.
    size_bytes:
        Transfer size of this record under the encoding model.
    """

    object_id: int
    key: CoefficientKey
    kind: CoefficientKind
    position: np.ndarray
    value: float
    support_box: Box
    size_bytes: int

    def __post_init__(self) -> None:
        pos = np.asarray(self.position, dtype=float)
        if pos.shape != (3,):
            raise WaveletError(f"position must be a 3-vector, got {pos.shape}")
        if not 0.0 <= self.value <= 1.0:
            raise WaveletError(f"value must be in [0, 1], got {self.value}")
        if self.kind is CoefficientKind.BASE and not self.key.is_base:
            raise WaveletError("BASE record must use level -1")
        if self.kind is CoefficientKind.DETAIL and self.key.is_base:
            raise WaveletError("DETAIL record cannot use level -1")
        if self.support_box.ndim != 3:
            raise WaveletError(
                f"support box must be 3-D, got {self.support_box.ndim}-D"
            )
        if self.size_bytes <= 0:
            raise WaveletError(f"size_bytes must be positive, got {self.size_bytes}")
        object.__setattr__(self, "position", pos)

    @property
    def uid(self) -> tuple[int, int, int]:
        """Globally unique id ``(object_id, level, index)``."""
        return (self.object_id, self.key.level, self.key.index)

    def matches(self, region: Box, w_min: float, w_max: float) -> bool:
        """True when this record answers the query ``Q(region, w_max, w_min)``.

        A record matches when its support-region MBB intersects the
        (3-D) query region and its value lies within ``[w_min, w_max]``.
        """
        if not w_min <= self.value <= w_max:
            return False
        return self.support_box.intersects(region)
