"""Wavelet analysis: fine mesh hierarchy -> base mesh + coefficients.

Analysis inverts the subdivision process of Section III: for each level
``j`` the coefficient of inserted vertex ``i`` is the displacement of
the deformed fine vertex from its parent edge midpoint::

    d_i^j = v_fine - (v_a + v_b) / 2

Coefficient magnitudes are normalised per object to ``[0, 1]`` (the
paper's convention); base-mesh vertices get the fixed value ``1.0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import WaveletError
from repro.geometry.box import Box
from repro.mesh.generators import DeformedHierarchy
from repro.mesh.subdivision import midpoint_subdivide
from repro.mesh.trimesh import Edge, TriMesh
from repro.wavelets.coefficients import (
    CoefficientKey,
    CoefficientKind,
    CoefficientRecord,
)
from repro.wavelets.encoding import DEFAULT_ENCODING, EncodingModel
from repro.wavelets.support import all_support_boxes, base_vertex_support_box

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.columns import CoefficientStore

__all__ = ["LevelCoefficients", "WaveletDecomposition", "analyze_hierarchy"]


@dataclass(frozen=True)
class LevelCoefficients:
    """Detail coefficients for one level ``j`` (``M^j -> M^{j+1}``).

    Attributes
    ----------
    parent_edges:
        Coarse edge per inserted vertex, in the canonical order produced
        by :func:`repro.mesh.subdivision.midpoint_subdivide`.
    displacements:
        ``(n, 3)`` displacement vectors (the raw coefficients).
    magnitudes:
        Euclidean norms of the displacements.
    values:
        Normalised magnitudes in ``[0, 1]`` (object-wide normalisation).
    positions:
        ``(n, 3)`` deformed positions of the inserted vertices.
    support_boxes:
        MBB of each coefficient's support region.
    """

    parent_edges: tuple[Edge, ...]
    displacements: np.ndarray
    magnitudes: np.ndarray
    values: np.ndarray
    positions: np.ndarray
    support_boxes: tuple[Box, ...]

    @property
    def count(self) -> int:
        return len(self.parent_edges)


class WaveletDecomposition:
    """A full wavelet decomposition of one 3-D object.

    Construct via :func:`analyze_hierarchy`.  Provides reconstruction at
    arbitrary value thresholds and flattening into indexable
    :class:`~repro.wavelets.coefficients.CoefficientRecord` rows.
    """

    def __init__(self, base: TriMesh, levels: tuple[LevelCoefficients, ...]):
        self._base = base
        self._levels = levels

    @property
    def base(self) -> TriMesh:
        """The base mesh ``M^0``."""
        return self._base

    @property
    def levels(self) -> tuple[LevelCoefficients, ...]:
        """Per-level detail coefficients, coarsest first."""
        return self._levels

    @property
    def depth(self) -> int:
        """Number of detail levels ``J``."""
        return len(self._levels)

    @property
    def detail_count(self) -> int:
        """Total number of detail coefficients."""
        return sum(level.count for level in self._levels)

    def value_of(self, key: CoefficientKey) -> float:
        """Normalised value of a coefficient (1.0 for base keys)."""
        if key.is_base:
            if key.index >= self._base.vertex_count:
                raise WaveletError(f"base index {key.index} out of range")
            return 1.0
        if key.level >= self.depth:
            raise WaveletError(f"level {key.level} out of range [0, {self.depth})")
        level = self._levels[key.level]
        if key.index >= level.count:
            raise WaveletError(f"index {key.index} out of range at level {key.level}")
        return float(level.values[key.index])

    # -- reconstruction ---------------------------------------------------------

    def reconstruct(
        self,
        w_min: float = 0.0,
        *,
        max_level: int | None = None,
        keys: set[CoefficientKey] | None = None,
    ) -> TriMesh:
        """Reconstruct the object using a subset of coefficients.

        Parameters
        ----------
        w_min:
            Only apply detail coefficients with value ``>= w_min``.
            ``0.0`` reproduces the full-resolution mesh exactly;
            ``> 1.0`` yields the subdivided base surface with no detail.
        max_level:
            Stop after this many detail levels (default: all).  The
            output always has the topology of level ``max_level``.
        keys:
            When given, apply only detail coefficients whose key is in
            this set *and* passes ``w_min``.  Used to render exactly the
            data a client has received.
        """
        depth = self.depth if max_level is None else max_level
        if not 0 <= depth <= self.depth:
            raise WaveletError(f"max_level must be in [0, {self.depth}], got {max_level}")
        current = self._base
        for j in range(depth):
            level = self._levels[j]
            step = midpoint_subdivide(current)
            if step.parent_edges != level.parent_edges:
                raise WaveletError(
                    f"topology mismatch at level {j}: stored coefficients do not "
                    "correspond to this mesh's subdivision"
                )
            vertices = step.fine.vertices.copy()
            offset = current.vertex_count
            for i in range(level.count):
                if level.values[i] < w_min:
                    continue
                if keys is not None and CoefficientKey(j, i) not in keys:
                    continue
                vertices[offset + i] += level.displacements[i]
            current = step.fine.with_vertices(vertices)
        return current

    # -- flattening ---------------------------------------------------------------

    def records(
        self, object_id: int, encoding: EncodingModel = DEFAULT_ENCODING
    ) -> list[CoefficientRecord]:
        """All indexable records of this object (base first, then details)."""
        out: list[CoefficientRecord] = []
        for vi in range(self._base.vertex_count):
            out.append(
                CoefficientRecord(
                    object_id=object_id,
                    key=CoefficientKey(-1, vi),
                    kind=CoefficientKind.BASE,
                    position=self._base.vertices[vi].copy(),
                    value=1.0,
                    support_box=base_vertex_support_box(self._base, vi),
                    size_bytes=encoding.base_vertex_bytes(),
                )
            )
        for j, level in enumerate(self._levels):
            for i in range(level.count):
                out.append(
                    CoefficientRecord(
                        object_id=object_id,
                        key=CoefficientKey(j, i),
                        kind=CoefficientKind.DETAIL,
                        position=level.positions[i].copy(),
                        value=float(level.values[i]),
                        support_box=level.support_boxes[i],
                        size_bytes=encoding.coefficient_bytes(),
                    )
                )
        return out

    def column_store(
        self, object_id: int, encoding: EncodingModel = DEFAULT_ENCODING
    ) -> "CoefficientStore":
        """Flatten this object into the columnar store, built once here.

        Row ``i`` of the store corresponds to record ``i`` of
        :meth:`records`; the serving stack (index, server, buffering)
        operates on row slices of this store and only materialises
        :class:`CoefficientRecord` views at compatibility boundaries.
        """
        # Imported here: store.columns imports wavelets' leaf modules, so
        # a module-level import would cycle when repro.store loads first.
        from repro.store.columns import CoefficientStore

        return CoefficientStore.from_decomposition(object_id, self, encoding)

    def total_bytes(self, encoding: EncodingModel = DEFAULT_ENCODING) -> int:
        """Full-resolution wire size of this object."""
        return encoding.object_bytes(
            self._base.vertex_count, self._base.face_count, self.detail_count
        )

    def bytes_at_threshold(
        self, w_min: float, encoding: EncodingModel = DEFAULT_ENCODING
    ) -> int:
        """Wire size of the subset with value ``>= w_min`` (plus base)."""
        kept = sum(
            int(np.count_nonzero(level.values >= w_min)) for level in self._levels
        )
        return encoding.base_mesh_bytes(
            self._base.vertex_count, self._base.face_count
        ) + encoding.coefficients_bytes(kept)

    def magnitude_stats(self) -> list[dict[str, float]]:
        """Per-level summary of raw coefficient magnitudes."""
        stats = []
        for level in self._levels:
            if level.count == 0:
                stats.append({"count": 0, "mean": 0.0, "max": 0.0})
                continue
            stats.append(
                {
                    "count": float(level.count),
                    "mean": float(level.magnitudes.mean()),
                    "max": float(level.magnitudes.max()),
                }
            )
        return stats

    def __repr__(self) -> str:
        return (
            f"WaveletDecomposition(base={self._base!r}, depth={self.depth}, "
            f"details={self.detail_count})"
        )


def analyze_hierarchy(hierarchy: DeformedHierarchy) -> WaveletDecomposition:
    """Decompose a deformed subdivision hierarchy into wavelets.

    Works purely from the mesh geometry (it recomputes each displacement
    as *deformed fine vertex minus parent midpoint*), so it also
    validates that the hierarchy really is a subdivision hierarchy.
    """
    raw_levels: list[dict] = []
    max_magnitude = 0.0
    for lvl in hierarchy.levels:
        step = lvl.step
        fine = lvl.deformed_fine
        count = step.inserted_count
        displacements = np.empty((count, 3))
        positions = np.empty((count, 3))
        for i in range(count):
            fine_idx = step.fine_index(i)
            predicted = step.parent_midpoint(i)
            actual = fine.vertices[fine_idx]
            displacements[i] = actual - predicted
            positions[i] = actual
        magnitudes = np.linalg.norm(displacements, axis=1)
        if count:
            max_magnitude = max(max_magnitude, float(magnitudes.max()))
        raw_levels.append(
            {
                "parent_edges": step.parent_edges,
                "displacements": displacements,
                "magnitudes": magnitudes,
                "positions": positions,
                "support_boxes": tuple(all_support_boxes(step, fine)),
            }
        )

    levels: list[LevelCoefficients] = []
    for raw in raw_levels:
        if max_magnitude > 0.0:
            values = raw["magnitudes"] / max_magnitude
        else:
            values = np.zeros_like(raw["magnitudes"])
        values = np.clip(values, 0.0, 1.0)
        levels.append(
            LevelCoefficients(
                parent_edges=raw["parent_edges"],
                displacements=raw["displacements"],
                magnitudes=raw["magnitudes"],
                values=values,
                positions=raw["positions"],
                support_boxes=raw["support_boxes"],
            )
        )
    return WaveletDecomposition(base=hierarchy.base, levels=tuple(levels))
