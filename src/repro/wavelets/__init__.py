"""Wavelet multi-resolution layer: analysis, synthesis, support regions."""

from repro.wavelets.analysis import (
    LevelCoefficients,
    WaveletDecomposition,
    analyze_hierarchy,
)
from repro.wavelets.coefficients import (
    CoefficientKey,
    CoefficientKind,
    CoefficientRecord,
)
from repro.wavelets.encoding import DEFAULT_ENCODING, EncodingModel
from repro.wavelets.support import (
    affected_region,
    all_support_boxes,
    base_vertex_support_box,
    support_box,
    support_vertices,
)
from repro.wavelets.serialization import (
    deserialize_decomposition,
    serialize_decomposition,
)
from repro.wavelets.synthesis import ProgressiveMesh

__all__ = [
    "LevelCoefficients",
    "WaveletDecomposition",
    "analyze_hierarchy",
    "CoefficientKey",
    "CoefficientKind",
    "CoefficientRecord",
    "EncodingModel",
    "DEFAULT_ENCODING",
    "support_vertices",
    "support_box",
    "all_support_boxes",
    "base_vertex_support_box",
    "affected_region",
    "ProgressiveMesh",
    "serialize_decomposition",
    "deserialize_decomposition",
]
