"""Progressive synthesis of meshes from received wavelet data.

While :meth:`WaveletDecomposition.reconstruct` rebuilds a mesh on the
server side (where the full decomposition is available), a *client* only
holds what it has received over the link.  :class:`ProgressiveMesh`
models that client-side state: the base mesh plus whatever detail
coefficients have arrived so far, in any order.  Rendering reconstructs
using received details and zero displacement everywhere else -- exactly
the "currently available version of objects in the client" that the
paper's selective transmission refines incrementally.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WaveletError
from repro.mesh.subdivision import midpoint_subdivide
from repro.mesh.trimesh import TriMesh
from repro.wavelets.coefficients import (
    CoefficientKey,
    CoefficientKind,
    CoefficientRecord,
)

__all__ = ["ProgressiveMesh"]


class ProgressiveMesh:
    """Client-side incrementally refinable representation of one object.

    Parameters
    ----------
    object_id:
        Database id of the object this instance mirrors.

    Notes
    -----
    The base mesh must be supplied (via :meth:`set_base`) before any
    rendering; detail coefficients may arrive before the base and are
    held until it does.  Receiving the same coefficient twice is
    idempotent and reported via the return value of :meth:`receive`, so
    callers can count redundant transmissions.
    """

    def __init__(self, object_id: int):
        self._object_id = object_id
        self._base: TriMesh | None = None
        # level -> {index: displacement}
        self._details: dict[int, dict[int, np.ndarray]] = {}
        self._received_bytes = 0
        self._duplicate_bytes = 0

    @property
    def object_id(self) -> int:
        return self._object_id

    @property
    def has_base(self) -> bool:
        """True once the base mesh arrived."""
        return self._base is not None

    @property
    def received_bytes(self) -> int:
        """Total unique bytes received for this object."""
        return self._received_bytes

    @property
    def duplicate_bytes(self) -> int:
        """Bytes wasted on records received more than once."""
        return self._duplicate_bytes

    @property
    def detail_count(self) -> int:
        """Number of distinct detail coefficients held."""
        return sum(len(level) for level in self._details.values())

    def set_base(self, base: TriMesh, size_bytes: int) -> bool:
        """Install the base mesh; returns False when already present."""
        if self._base is not None:
            self._duplicate_bytes += size_bytes
            return False
        self._base = base
        self._received_bytes += size_bytes
        return True

    def receive(self, record: CoefficientRecord, displacement: np.ndarray) -> bool:
        """Store one detail coefficient; returns False on duplicates.

        ``displacement`` is the raw 3-vector payload of the coefficient
        (the record itself only carries the normalised value used for
        filtering).
        """
        if record.object_id != self._object_id:
            raise WaveletError(
                f"record for object {record.object_id} sent to mesh "
                f"{self._object_id}"
            )
        if record.kind is not CoefficientKind.DETAIL:
            raise WaveletError("receive() only accepts DETAIL records; use set_base")
        disp = np.asarray(displacement, dtype=float)
        if disp.shape != (3,):
            raise WaveletError(f"displacement must be a 3-vector, got {disp.shape}")
        level = self._details.setdefault(record.key.level, {})
        if record.key.index in level:
            self._duplicate_bytes += record.size_bytes
            return False
        level[record.key.index] = disp
        self._received_bytes += record.size_bytes
        return True

    def has_coefficient(self, key: CoefficientKey) -> bool:
        """True when the given detail coefficient has been received."""
        return key.index in self._details.get(key.level, {})

    def received_keys(self) -> set[CoefficientKey]:
        """All detail keys received so far."""
        return {
            CoefficientKey(level, index)
            for level, entries in self._details.items()
            for index in entries
        }

    def current_mesh(self, levels: int | None = None) -> TriMesh:
        """Render the object from data received so far.

        Parameters
        ----------
        levels:
            Topology depth of the output; defaults to the deepest level
            for which any coefficient arrived (0 when only the base is
            present).  Missing coefficients contribute zero displacement.
        """
        if self._base is None:
            raise WaveletError(
                f"object {self._object_id}: base mesh not yet received"
            )
        if levels is None:
            levels = max(self._details.keys(), default=-1) + 1
        if levels < 0:
            raise WaveletError("levels must be non-negative")
        current = self._base
        for j in range(levels):
            step = midpoint_subdivide(current)
            vertices = step.fine.vertices.copy()
            offset = current.vertex_count
            for index, disp in self._details.get(j, {}).items():
                if index >= step.inserted_count:
                    raise WaveletError(
                        f"coefficient index {index} invalid at level {j} "
                        f"(only {step.inserted_count} inserted vertices)"
                    )
                vertices[offset + index] += disp
            current = step.fine.with_vertices(vertices)
        return current

    def __repr__(self) -> str:
        return (
            f"ProgressiveMesh(object={self._object_id}, base={self.has_base}, "
            f"details={self.detail_count})"
        )
