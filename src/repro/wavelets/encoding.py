"""Byte-size model for wavelet-encoded objects.

All transfer-volume numbers in the experiments (MB retrieved, buffer
occupancy, link transfer times) come from this model rather than from
Python object sizes, so they are stable across platforms and match how a
real wire format would behave:

* a base-mesh vertex ships its full position (3 floats) plus an id;
* a detail coefficient ships a quantised displacement plus its level
  and index (its position is implied by the parents, which is the
  compactness advantage of wavelets the paper highlights);
* base connectivity ships once per object.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["EncodingModel", "DEFAULT_ENCODING"]


@dataclass(frozen=True)
class EncodingModel:
    """Bytes-on-the-wire accounting for mesh/wavelet data.

    The defaults approximate a compact binary format: 4-byte floats,
    4-byte indices, 2-byte quantised displacement components.
    """

    bytes_per_base_vertex: int = 16   # 3 x float32 position + uint32 id
    bytes_per_face: int = 12          # 3 x uint32 indices
    bytes_per_coefficient: int = 12   # 3 x int16 quantised delta + level/index/tags
    object_header_bytes: int = 32     # object id, level count, bounding box

    def __post_init__(self) -> None:
        for name in (
            "bytes_per_base_vertex",
            "bytes_per_face",
            "bytes_per_coefficient",
            "object_header_bytes",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    def base_mesh_bytes(self, vertex_count: int, face_count: int) -> int:
        """Size of a base mesh (header + vertices + connectivity)."""
        return (
            self.object_header_bytes
            + vertex_count * self.bytes_per_base_vertex
            + face_count * self.bytes_per_face
        )

    def coefficients_bytes(self, count: int) -> int:
        """Size of ``count`` detail coefficients."""
        return count * self.bytes_per_coefficient

    def base_vertex_bytes(self) -> int:
        """Size of one base vertex record (amortised header excluded)."""
        return self.bytes_per_base_vertex

    def coefficient_bytes(self) -> int:
        """Size of one detail coefficient record."""
        return self.bytes_per_coefficient

    def object_bytes(
        self, base_vertices: int, base_faces: int, total_coefficients: int
    ) -> int:
        """Full-resolution size of one object."""
        return self.base_mesh_bytes(base_vertices, base_faces) + self.coefficients_bytes(
            total_coefficients
        )


DEFAULT_ENCODING = EncodingModel()
