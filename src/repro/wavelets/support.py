"""Support regions of subdivision wavelets.

The support region of the coefficient attached to inserted vertex ``v``
(midpoint of coarse edge ``(a, b)``) is the part of the surface that
moves when the coefficient changes: the union of faces incident to ``v``
in the finer mesh ``M^{j+1}`` (the paper's Figure 1(c) example: the
polygon ``(1, 4, 2, 5, 6)`` around vertex 4).  The index stores the
axis-aligned MBB of that polygon.

The module also verifies the paper's monotonicity property (Section
VI-A): with fewer coefficients the affected region can only shrink --
used by property-based tests.
"""

from __future__ import annotations

from repro.errors import WaveletError
from repro.geometry.box import Box
from repro.mesh.subdivision import SubdivisionStep
from repro.mesh.trimesh import TriMesh

__all__ = [
    "support_vertices",
    "support_box",
    "all_support_boxes",
    "base_vertex_support_box",
]


def support_vertices(fine: TriMesh, fine_vertex: int) -> set[int]:
    """Vertex set of the support polygon of an inserted vertex.

    This is the inserted vertex plus all vertices of faces incident to
    it in the fine mesh.
    """
    faces = fine.faces_of_vertex(fine_vertex)
    if not faces:
        raise WaveletError(
            f"vertex {fine_vertex} has no incident faces; not part of the surface"
        )
    verts: set[int] = set()
    for fi in faces:
        verts.update(int(v) for v in fine.faces[fi])
    return verts


def support_box(fine: TriMesh, fine_vertex: int) -> Box:
    """Axis-aligned MBB of the support region of an inserted vertex."""
    verts = support_vertices(fine, fine_vertex)
    points = fine.vertices[sorted(verts)]
    return Box(points.min(axis=0), points.max(axis=0))


def all_support_boxes(step: SubdivisionStep, deformed_fine: TriMesh) -> list[Box]:
    """Support-region MBBs for every vertex inserted by ``step``.

    ``deformed_fine`` must be the *deformed* fine mesh (same topology as
    ``step.fine``) so that the boxes bound the actual geometry.
    """
    if deformed_fine.vertex_count != step.fine.vertex_count:
        raise WaveletError(
            "deformed fine mesh vertex count "
            f"{deformed_fine.vertex_count} != step fine {step.fine.vertex_count}"
        )
    boxes = []
    for i in range(step.inserted_count):
        boxes.append(support_box(deformed_fine, step.fine_index(i)))
    return boxes


def base_vertex_support_box(base: TriMesh, vertex: int) -> Box:
    """Support MBB of a base-mesh vertex: its incident faces' bounds.

    A base vertex influences every face around it at all levels, so its
    support is the one-ring of the base mesh.  Isolated vertices fall
    back to a degenerate point box.
    """
    faces = base.faces_of_vertex(vertex)
    if not faces:
        point = base.vertices[vertex]
        return Box(point, point)
    verts: set[int] = set()
    for fi in faces:
        verts.update(int(v) for v in base.faces[fi])
    points = base.vertices[sorted(verts)]
    return Box(points.min(axis=0), points.max(axis=0))


def affected_region(region: Box, support: Box) -> Box | None:
    """The part of ``region`` a coefficient with ``support`` influences.

    Implements ``R' = R intersect r_k`` from Section VI-A; ``None`` when
    the coefficient does not touch the region.  The containment property
    ``R2 subset R1  =>  R2' subset R1'`` follows from intersection
    monotonicity and is exercised by tests.
    """
    return region.intersection(support)


__all__.append("affected_region")
