"""Procedural mesh generators.

The paper's datasets are 3-D models of "old buildings" distributed over
a city.  We do not have those models, so this module builds procedural
stand-ins: coarse base solids (icosahedron, octahedron, box prism)
subdivided several times with the newly inserted vertices displaced by
deterministic, level-decaying noise.  Because only the *inserted*
vertices move at each level -- exactly the subdivision-wavelet setting
of Section III -- the resulting hierarchies have genuine wavelet
decompositions with magnitudes that decay across levels, which is the
property every experiment in the paper depends on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MeshError
from repro.mesh.subdivision import SubdivisionStep, midpoint_subdivide
from repro.mesh.trimesh import TriMesh

__all__ = [
    "icosahedron",
    "octahedron",
    "box_prism",
    "DeformedLevel",
    "DeformedHierarchy",
    "generate_deformed_hierarchy",
    "procedural_building",
    "procedural_landmark",
]


def octahedron(radius: float = 1.0, center: tuple[float, float, float] = (0, 0, 0)) -> TriMesh:
    """A regular octahedron: 6 vertices, 8 faces."""
    if radius <= 0:
        raise MeshError("radius must be positive")
    c = np.asarray(center, dtype=float)
    verts = np.array(
        [
            [1, 0, 0],
            [-1, 0, 0],
            [0, 1, 0],
            [0, -1, 0],
            [0, 0, 1],
            [0, 0, -1],
        ],
        dtype=float,
    ) * radius + c
    faces = np.array(
        [
            [0, 2, 4], [2, 1, 4], [1, 3, 4], [3, 0, 4],
            [2, 0, 5], [1, 2, 5], [3, 1, 5], [0, 3, 5],
        ],
        dtype=int,
    )
    return TriMesh(verts, faces)


def icosahedron(radius: float = 1.0, center: tuple[float, float, float] = (0, 0, 0)) -> TriMesh:
    """A regular icosahedron: 12 vertices, 20 faces."""
    if radius <= 0:
        raise MeshError("radius must be positive")
    phi = (1.0 + np.sqrt(5.0)) / 2.0
    raw = np.array(
        [
            [-1, phi, 0], [1, phi, 0], [-1, -phi, 0], [1, -phi, 0],
            [0, -1, phi], [0, 1, phi], [0, -1, -phi], [0, 1, -phi],
            [phi, 0, -1], [phi, 0, 1], [-phi, 0, -1], [-phi, 0, 1],
        ],
        dtype=float,
    )
    raw /= np.linalg.norm(raw[0])
    verts = raw * radius + np.asarray(center, dtype=float)
    faces = np.array(
        [
            [0, 11, 5], [0, 5, 1], [0, 1, 7], [0, 7, 10], [0, 10, 11],
            [1, 5, 9], [5, 11, 4], [11, 10, 2], [10, 7, 6], [7, 1, 8],
            [3, 9, 4], [3, 4, 2], [3, 2, 6], [3, 6, 8], [3, 8, 9],
            [4, 9, 5], [2, 4, 11], [6, 2, 10], [8, 6, 7], [9, 8, 1],
        ],
        dtype=int,
    )
    return TriMesh(verts, faces)


def box_prism(
    center: tuple[float, float, float] = (0, 0, 0),
    extents: tuple[float, float, float] = (1, 1, 1),
) -> TriMesh:
    """A rectangular box (building footprint x height), 8 vertices, 12 faces."""
    e = np.asarray(extents, dtype=float)
    if np.any(e <= 0):
        raise MeshError("box extents must be positive")
    c = np.asarray(center, dtype=float)
    half = e / 2.0
    signs = np.array(
        [
            [-1, -1, -1], [1, -1, -1], [1, 1, -1], [-1, 1, -1],
            [-1, -1, 1], [1, -1, 1], [1, 1, 1], [-1, 1, 1],
        ],
        dtype=float,
    )
    verts = c + signs * half
    faces = np.array(
        [
            [0, 2, 1], [0, 3, 2],          # bottom
            [4, 5, 6], [4, 6, 7],          # top
            [0, 1, 5], [0, 5, 4],          # front
            [1, 2, 6], [1, 6, 5],          # right
            [2, 3, 7], [2, 7, 6],          # back
            [3, 0, 4], [3, 4, 7],          # left
        ],
        dtype=int,
    )
    return TriMesh(verts, faces)


@dataclass(frozen=True)
class DeformedLevel:
    """One level of a deformed subdivision hierarchy.

    Attributes
    ----------
    step:
        The subdivision step from the *deformed* ``M^j`` to the
        undeformed prediction of ``M^{j+1}`` (midpoints in place).
    displacements:
        ``(inserted_count, 3)`` displacement applied to each inserted
        vertex.  These are exactly the wavelet coefficients of the
        level (``d_i^j`` in the paper).
    deformed_fine:
        The deformed ``M^{j+1}``: the fine mesh of ``step`` with
        ``displacements`` added to the inserted vertices.
    """

    step: SubdivisionStep
    displacements: np.ndarray
    deformed_fine: TriMesh


@dataclass(frozen=True)
class DeformedHierarchy:
    """A base mesh plus ``J`` deformed subdivision levels.

    ``meshes[0]`` is the base mesh ``M^0`` and ``meshes[j]`` the deformed
    ``M^j``; ``levels[j]`` records how ``M^{j+1}`` was derived from
    ``M^j``.
    """

    base: TriMesh
    levels: tuple[DeformedLevel, ...]

    @property
    def depth(self) -> int:
        """Number of subdivision levels ``J``."""
        return len(self.levels)

    @property
    def meshes(self) -> list[TriMesh]:
        """``[M^0, M^1, ..., M^J]`` (deformed at every level)."""
        return [self.base] + [lvl.deformed_fine for lvl in self.levels]

    @property
    def finest(self) -> TriMesh:
        """The final mesh ``M^J``."""
        return self.levels[-1].deformed_fine if self.levels else self.base


def generate_deformed_hierarchy(
    base: TriMesh,
    levels: int,
    rng: np.random.Generator,
    *,
    amplitude: float = 0.15,
    decay: float = 0.5,
    along_normals: bool = True,
) -> DeformedHierarchy:
    """Subdivide ``base`` ``levels`` times, displacing inserted vertices.

    Parameters
    ----------
    base:
        The base mesh ``M^0``.
    levels:
        Number of subdivision levels ``J >= 0``.
    rng:
        Seeded random generator; all noise flows from it.
    amplitude:
        Displacement scale at level 0, as a fraction of the base mesh's
        bounding-box diagonal.
    decay:
        Multiplicative decay of the amplitude per level.  ``decay < 1``
        yields the realistic "details shrink with level" coefficient
        distribution (most coefficients small) that the paper's
        speed-to-resolution mapping exploits.
    along_normals:
        When true, displace along the (noisy) vertex normal of the
        parent midpoint; otherwise use isotropic Gaussian noise.
    """
    if levels < 0:
        raise MeshError("levels must be non-negative")
    diag = float(np.linalg.norm(base.bounding_box().extents))
    if diag == 0.0:
        raise MeshError("base mesh is degenerate (zero-size bounding box)")
    built: list[DeformedLevel] = []
    current = base
    scale = amplitude * diag
    for _ in range(levels):
        step = midpoint_subdivide(current)
        count = step.inserted_count
        magnitudes = rng.normal(0.0, scale, size=count)
        if along_normals:
            directions = np.empty((count, 3))
            for i in range(count):
                a, b = step.parent_edges[i]
                normal = current.vertex_normal(a) + current.vertex_normal(b)
                length = float(np.linalg.norm(normal))
                if length == 0.0:
                    normal = rng.normal(size=3)
                    length = float(np.linalg.norm(normal))
                directions[i] = normal / length
            displacements = directions * magnitudes[:, None]
        else:
            displacements = rng.normal(0.0, scale, size=(count, 3))
        fine_vertices = step.fine.vertices.copy()
        fine_vertices[current.vertex_count:] += displacements
        deformed = step.fine.with_vertices(fine_vertices)
        built.append(
            DeformedLevel(step=step, displacements=displacements, deformed_fine=deformed)
        )
        current = deformed
        scale *= decay
    return DeformedHierarchy(base=base, levels=tuple(built))


def procedural_building(
    rng: np.random.Generator,
    *,
    center: tuple[float, float, float] = (0.0, 0.0, 0.0),
    footprint: tuple[float, float] = (20.0, 15.0),
    height: float = 30.0,
    levels: int = 3,
    ornamentation: float = 0.08,
) -> DeformedHierarchy:
    """A multiresolution "old building": a prism with noisy facade detail.

    ``ornamentation`` controls the relative size of facade detail
    (cornices, reliefs) added at each level.
    """
    if height <= 0 or footprint[0] <= 0 or footprint[1] <= 0:
        raise MeshError("building dimensions must be positive")
    base = box_prism(
        center=(center[0], center[1], center[2] + height / 2.0),
        extents=(footprint[0], footprint[1], height),
    )
    return generate_deformed_hierarchy(
        base, levels, rng, amplitude=ornamentation, decay=0.5
    )


def procedural_landmark(
    rng: np.random.Generator,
    *,
    center: tuple[float, float, float] = (0.0, 0.0, 0.0),
    radius: float = 10.0,
    levels: int = 3,
    roughness: float = 0.12,
) -> DeformedHierarchy:
    """A multiresolution dome/statue-like landmark from an icosahedron."""
    base = icosahedron(radius=radius, center=center)
    return generate_deformed_hierarchy(
        base, levels, rng, amplitude=roughness, decay=0.55
    )
