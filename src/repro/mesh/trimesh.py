"""Triangular surface meshes.

A :class:`TriMesh` is the unit of 3-D content in the system: every
database object is (a multiresolution hierarchy of) triangle meshes.
The class stores vertices as an ``(n, 3)`` float array and faces as an
``(m, 3)`` int array, and lazily derives the connectivity needed by the
wavelet layer (edge list, vertex neighbourhoods, faces incident to a
vertex).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import MeshError
from repro.geometry.box import Box

__all__ = ["TriMesh", "Edge", "ordered_edge"]

# An undirected edge is canonically the sorted pair of vertex indices.
Edge = tuple[int, int]


def ordered_edge(a: int, b: int) -> Edge:
    """The canonical (sorted) form of the undirected edge ``{a, b}``."""
    if a == b:
        raise MeshError(f"degenerate edge ({a}, {b})")
    return (a, b) if a < b else (b, a)


class TriMesh:
    """An immutable triangular mesh embedded in 3-D space.

    Parameters
    ----------
    vertices:
        ``(n, 3)`` array of vertex positions.
    faces:
        ``(m, 3)`` array of vertex indices; each row is one triangle.
        Faces must reference valid vertices and must not repeat a vertex.

    Notes
    -----
    Vertices and faces arrays are copied and frozen; derived adjacency
    structures are computed on first use and cached.
    """

    def __init__(
        self,
        vertices: Sequence[Sequence[float]] | np.ndarray,
        faces: Sequence[Sequence[int]] | np.ndarray,
    ):
        verts = np.array(vertices, dtype=float)
        face_arr = np.array(faces, dtype=int)
        if verts.ndim != 2 or verts.shape[1] != 3:
            raise MeshError(f"vertices must be (n, 3), got {verts.shape}")
        if face_arr.size == 0:
            face_arr = face_arr.reshape(0, 3)
        if face_arr.ndim != 2 or face_arr.shape[1] != 3:
            raise MeshError(f"faces must be (m, 3), got {face_arr.shape}")
        if not np.all(np.isfinite(verts)):
            raise MeshError("vertex coordinates must be finite")
        n = verts.shape[0]
        if face_arr.size and (face_arr.min() < 0 or face_arr.max() >= n):
            raise MeshError(
                f"face references vertex outside [0, {n}): "
                f"min={face_arr.min()} max={face_arr.max()}"
            )
        for row in face_arr:
            if len({int(v) for v in row}) != 3:
                raise MeshError(f"face {tuple(int(v) for v in row)} repeats a vertex")
        verts.setflags(write=False)
        face_arr.setflags(write=False)
        self._vertices = verts
        self._faces = face_arr
        self._edges: list[Edge] | None = None
        self._vertex_faces: dict[int, list[int]] | None = None
        self._vertex_neighbors: dict[int, set[int]] | None = None
        self._edge_faces: dict[Edge, list[int]] | None = None

    # -- core accessors --------------------------------------------------------

    @property
    def vertices(self) -> np.ndarray:
        """``(n, 3)`` read-only vertex positions."""
        return self._vertices

    @property
    def faces(self) -> np.ndarray:
        """``(m, 3)`` read-only face vertex indices."""
        return self._faces

    @property
    def vertex_count(self) -> int:
        return self._vertices.shape[0]

    @property
    def face_count(self) -> int:
        return self._faces.shape[0]

    # -- derived connectivity ---------------------------------------------------

    def edges(self) -> list[Edge]:
        """All undirected edges, each listed once in canonical order."""
        if self._edges is None:
            seen: set[Edge] = set()
            for a, b, c in self._faces:
                seen.add(ordered_edge(int(a), int(b)))
                seen.add(ordered_edge(int(b), int(c)))
                seen.add(ordered_edge(int(a), int(c)))
            self._edges = sorted(seen)
        return self._edges

    @property
    def edge_count(self) -> int:
        return len(self.edges())

    def faces_of_vertex(self, vertex: int) -> list[int]:
        """Indices of faces incident to ``vertex``."""
        if self._vertex_faces is None:
            table: dict[int, list[int]] = {}
            for fi, (a, b, c) in enumerate(self._faces):
                for v in (int(a), int(b), int(c)):
                    table.setdefault(v, []).append(fi)
            self._vertex_faces = table
        self._check_vertex(vertex)
        return list(self._vertex_faces.get(vertex, []))

    def vertex_neighbors(self, vertex: int) -> set[int]:
        """Vertices sharing an edge with ``vertex``."""
        if self._vertex_neighbors is None:
            table: dict[int, set[int]] = {}
            for a, b in self.edges():
                table.setdefault(a, set()).add(b)
                table.setdefault(b, set()).add(a)
            self._vertex_neighbors = table
        self._check_vertex(vertex)
        return set(self._vertex_neighbors.get(vertex, set()))

    def faces_of_edge(self, edge: Edge) -> list[int]:
        """Indices of faces containing both endpoints of ``edge``."""
        if self._edge_faces is None:
            table: dict[Edge, list[int]] = {}
            for fi, (a, b, c) in enumerate(self._faces):
                a, b, c = int(a), int(b), int(c)
                for e in (
                    ordered_edge(a, b),
                    ordered_edge(b, c),
                    ordered_edge(a, c),
                ):
                    table.setdefault(e, []).append(fi)
            self._edge_faces = table
        key = ordered_edge(*edge)
        return list(self._edge_faces.get(key, []))

    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < self.vertex_count:
            raise MeshError(
                f"vertex {vertex} out of range [0, {self.vertex_count})"
            )

    # -- geometry ----------------------------------------------------------------

    def bounding_box(self) -> Box:
        """Axis-aligned bounding box of all vertices."""
        if self.vertex_count == 0:
            raise MeshError("empty mesh has no bounding box")
        return Box(self._vertices.min(axis=0), self._vertices.max(axis=0))

    def face_normal(self, face: int) -> np.ndarray:
        """Unit normal of a face (right-hand rule on vertex order)."""
        if not 0 <= face < self.face_count:
            raise MeshError(f"face {face} out of range [0, {self.face_count})")
        a, b, c = self._faces[face]
        v0 = self._vertices[a]
        cross = np.cross(self._vertices[b] - v0, self._vertices[c] - v0)
        length = float(np.linalg.norm(cross))
        if length == 0.0:
            raise MeshError(f"face {face} is geometrically degenerate")
        return cross / length

    def face_area(self, face: int) -> float:
        """Area of a single triangle."""
        if not 0 <= face < self.face_count:
            raise MeshError(f"face {face} out of range [0, {self.face_count})")
        a, b, c = self._faces[face]
        v0 = self._vertices[a]
        cross = np.cross(self._vertices[b] - v0, self._vertices[c] - v0)
        return float(np.linalg.norm(cross)) / 2.0

    def surface_area(self) -> float:
        """Total area of all faces."""
        if self.face_count == 0:
            return 0.0
        v = self._vertices
        f = self._faces
        cross = np.cross(v[f[:, 1]] - v[f[:, 0]], v[f[:, 2]] - v[f[:, 0]])
        return float(np.linalg.norm(cross, axis=1).sum()) / 2.0

    def vertex_normal(self, vertex: int) -> np.ndarray:
        """Area-weighted average normal of faces around ``vertex``.

        Falls back to the radial direction from the mesh centroid when
        all incident faces are degenerate or the vertex is isolated.
        """
        total = np.zeros(3)
        for fi in self.faces_of_vertex(vertex):
            a, b, c = self._faces[fi]
            v0 = self._vertices[a]
            total += np.cross(self._vertices[b] - v0, self._vertices[c] - v0)
        length = float(np.linalg.norm(total))
        if length > 0.0:
            return total / length
        radial = self._vertices[vertex] - self._vertices.mean(axis=0)
        radial_len = float(np.linalg.norm(radial))
        if radial_len > 0.0:
            return radial / radial_len
        return np.array([0.0, 0.0, 1.0])

    # -- transforms --------------------------------------------------------------

    def with_vertices(self, vertices: np.ndarray) -> "TriMesh":
        """A mesh with the same faces but new vertex positions."""
        verts = np.asarray(vertices, dtype=float)
        if verts.shape != self._vertices.shape:
            raise MeshError(
                f"replacement vertices {verts.shape} must match {self._vertices.shape}"
            )
        return TriMesh(verts, self._faces)

    def translated(self, offset: Sequence[float]) -> "TriMesh":
        """A copy shifted by ``offset``."""
        off = np.asarray(offset, dtype=float)
        if off.shape != (3,):
            raise MeshError(f"offset must have 3 components, got {off.shape}")
        return TriMesh(self._vertices + off, self._faces)

    def scaled(self, factor: float | Sequence[float]) -> "TriMesh":
        """A copy scaled about the origin (scalar or per-axis factors)."""
        return TriMesh(self._vertices * np.asarray(factor, dtype=float), self._faces)

    # -- misc ---------------------------------------------------------------------

    def is_closed(self) -> bool:
        """True when every edge borders exactly two faces (watertight)."""
        return all(len(self.faces_of_edge(e)) == 2 for e in self.edges())

    def euler_characteristic(self) -> int:
        """V - E + F (2 for a sphere-topology closed mesh)."""
        return self.vertex_count - self.edge_count + self.face_count

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TriMesh):
            return NotImplemented
        return (
            self._vertices.shape == other._vertices.shape
            and self._faces.shape == other._faces.shape
            and bool(np.all(self._vertices == other._vertices))
            and bool(np.all(self._faces == other._faces))
        )

    def __repr__(self) -> str:
        return f"TriMesh(vertices={self.vertex_count}, faces={self.face_count})"


def merge_meshes(meshes: Iterable[TriMesh]) -> TriMesh:
    """Concatenate meshes into one (vertex indices re-based)."""
    verts: list[np.ndarray] = []
    faces: list[np.ndarray] = []
    offset = 0
    for mesh in meshes:
        verts.append(mesh.vertices)
        faces.append(mesh.faces + offset)
        offset += mesh.vertex_count
    if not verts:
        raise MeshError("cannot merge zero meshes")
    return TriMesh(np.vstack(verts), np.vstack(faces))


__all__.append("merge_meshes")
