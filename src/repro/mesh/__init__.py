"""Triangular mesh engine: meshes, subdivision, generators, metrics."""

from repro.mesh.generators import (
    DeformedHierarchy,
    DeformedLevel,
    box_prism,
    generate_deformed_hierarchy,
    icosahedron,
    octahedron,
    procedural_building,
    procedural_landmark,
)
from repro.mesh.metrics import (
    hausdorff_vertex_distance,
    max_vertex_error,
    mean_nearest_vertex_distance,
    vertex_rmse,
)
from repro.mesh.progressive_pm import (
    PM_SPLIT_BYTES,
    ProgressiveMeshPM,
    VertexSplit,
    simplify_to_progressive,
)
from repro.mesh.subdivision import SubdivisionStep, midpoint_subdivide, subdivide_times
from repro.mesh.trimesh import Edge, TriMesh, merge_meshes, ordered_edge

__all__ = [
    "TriMesh",
    "Edge",
    "ordered_edge",
    "merge_meshes",
    "SubdivisionStep",
    "midpoint_subdivide",
    "subdivide_times",
    "ProgressiveMeshPM",
    "VertexSplit",
    "simplify_to_progressive",
    "PM_SPLIT_BYTES",
    "icosahedron",
    "octahedron",
    "box_prism",
    "DeformedLevel",
    "DeformedHierarchy",
    "generate_deformed_hierarchy",
    "procedural_building",
    "procedural_landmark",
    "vertex_rmse",
    "max_vertex_error",
    "hausdorff_vertex_distance",
    "mean_nearest_vertex_distance",
]
