"""Mesh approximation-quality metrics.

Used by tests and examples to show that reconstructing an object from a
subset of wavelet coefficients (a lower resolution) approximates the
full-resolution surface, and that the approximation improves
monotonically as more coefficients are added.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MeshError
from repro.mesh.trimesh import TriMesh

__all__ = [
    "vertex_rmse",
    "max_vertex_error",
    "hausdorff_vertex_distance",
    "mean_nearest_vertex_distance",
]


def vertex_rmse(a: TriMesh, b: TriMesh) -> float:
    """Root-mean-square distance between corresponding vertices.

    Requires identical vertex counts (meshes at the same hierarchy
    level, e.g. a reconstruction vs the original).
    """
    if a.vertex_count != b.vertex_count:
        raise MeshError(
            f"vertex count mismatch: {a.vertex_count} vs {b.vertex_count}"
        )
    if a.vertex_count == 0:
        return 0.0
    diff = a.vertices - b.vertices
    return float(np.sqrt(np.mean(np.sum(diff * diff, axis=1))))


def max_vertex_error(a: TriMesh, b: TriMesh) -> float:
    """Largest distance between corresponding vertices."""
    if a.vertex_count != b.vertex_count:
        raise MeshError(
            f"vertex count mismatch: {a.vertex_count} vs {b.vertex_count}"
        )
    if a.vertex_count == 0:
        return 0.0
    diff = a.vertices - b.vertices
    return float(np.max(np.linalg.norm(diff, axis=1)))


def _directed_nearest(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """For each point of ``a``, distance to its nearest point in ``b``."""
    # Chunk to bound memory on large meshes.
    out = np.empty(a.shape[0])
    chunk = 512
    for start in range(0, a.shape[0], chunk):
        part = a[start : start + chunk]
        d2 = np.sum((part[:, None, :] - b[None, :, :]) ** 2, axis=2)
        out[start : start + chunk] = np.sqrt(d2.min(axis=1))
    return out


def hausdorff_vertex_distance(a: TriMesh, b: TriMesh) -> float:
    """Symmetric Hausdorff distance between the vertex sets.

    Works for meshes at *different* resolutions, which correspondence
    metrics cannot compare.
    """
    if a.vertex_count == 0 or b.vertex_count == 0:
        raise MeshError("cannot compare empty meshes")
    ab = _directed_nearest(a.vertices, b.vertices).max()
    ba = _directed_nearest(b.vertices, a.vertices).max()
    return float(max(ab, ba))


def mean_nearest_vertex_distance(a: TriMesh, b: TriMesh) -> float:
    """Mean distance from each vertex of ``a`` to its nearest in ``b``."""
    if a.vertex_count == 0 or b.vertex_count == 0:
        raise MeshError("cannot compare empty meshes")
    return float(_directed_nearest(a.vertices, b.vertices).mean())
