"""Progressive meshes (Hoppe-style edge collapse) as a baseline.

Section II of the paper contrasts two multi-resolution representations:
progressive meshes [12] and wavelets [13], and argues wavelets are the
better fit for *transmission* because their coding is more compact.
This module implements the progressive-mesh side of that comparison: a
half-edge-collapse simplifier that reduces a mesh to a base mesh plus a
sequence of vertex-split records, and a byte model for shipping those
records, so the compactness claim can be measured instead of assumed.

The collapse used is the *half*-edge collapse ``v -> u``: vertex ``v``
merges into ``u`` (which keeps its position), the 1-2 faces containing
both disappear, and ``v``'s remaining faces retarget to ``u``.  A
vertex split inverts it exactly, so replaying all splits reproduces the
original mesh bit-for-bit (same vertex indices, same face set).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import MeshError
from repro.mesh.trimesh import TriMesh

__all__ = [
    "VertexSplit",
    "ProgressiveMeshPM",
    "simplify_to_progressive",
    "PM_SPLIT_BYTES",
]

# Wire cost of one vertex split: new vertex position (3 x float32) +
# parent index (uint32) + retarget cut encoding (2 x uint32).  Compare
# with the 12-byte wavelet coefficient of the default EncodingModel.
PM_SPLIT_BYTES = 24

Face = tuple[int, int, int]


def _faces_equal(a: Face, b: Face) -> bool:
    """Same oriented triangle up to rotation."""
    return b in ((a[0], a[1], a[2]), (a[1], a[2], a[0]), (a[2], a[0], a[1]))


def _canonical(face: Face) -> Face:
    """Rotation-invariant canonical form (orientation preserved)."""
    i = face.index(min(face))
    return (face[i], face[(i + 1) % 3], face[(i + 2) % 3])


@dataclass(frozen=True)
class VertexSplit:
    """One inverse edge collapse.

    Attributes
    ----------
    u:
        The surviving vertex the split re-expands.
    v:
        Index of the vertex the split re-creates.
    v_position:
        Where ``v`` goes.
    retarget:
        Faces (in the *collapsed* mesh, canonical form, containing
        ``u``) whose ``u`` corner becomes ``v`` again.
    restore:
        Faces containing both ``u`` and ``v`` that the collapse removed
        and the split re-adds.
    """

    u: int
    v: int
    v_position: np.ndarray
    retarget: tuple[Face, ...]
    restore: tuple[Face, ...]


class ProgressiveMeshPM:
    """A base mesh plus vertex splits, coarsest-first."""

    def __init__(
        self,
        vertex_positions: np.ndarray,
        base_vertex_ids: tuple[int, ...],
        base_faces: tuple[Face, ...],
        splits: tuple[VertexSplit, ...],
    ):
        self._positions = np.asarray(vertex_positions, dtype=float)
        self._base_ids = base_vertex_ids
        self._base_faces = base_faces
        self._splits = splits

    @property
    def split_count(self) -> int:
        return len(self._splits)

    @property
    def base_vertex_count(self) -> int:
        return len(self._base_ids)

    def total_bytes(self, *, base_vertex_bytes: int = 16, face_bytes: int = 12) -> int:
        """Wire size of the whole representation."""
        return (
            self.base_vertex_count * base_vertex_bytes
            + len(self._base_faces) * face_bytes
            + self.split_count * PM_SPLIT_BYTES
        )

    def bytes_to_detail(self, splits_applied: int, **kw) -> int:
        """Wire size to reach a given detail level."""
        if not 0 <= splits_applied <= self.split_count:
            raise MeshError(
                f"splits_applied must be in [0, {self.split_count}]"
            )
        full = self.total_bytes(**kw)
        return full - (self.split_count - splits_applied) * PM_SPLIT_BYTES

    def mesh_at(self, splits_applied: int) -> TriMesh:
        """Materialise the mesh after applying the first ``n`` splits.

        Vertex indices are re-packed densely; face orientation follows
        the original mesh.
        """
        if not 0 <= splits_applied <= self.split_count:
            raise MeshError(
                f"splits_applied must be in [0, {self.split_count}]"
            )
        active: set[Face] = set(self._base_faces)
        for split in self._splits[:splits_applied]:
            for face in split.retarget:
                if face not in active:
                    raise MeshError(
                        "corrupt split sequence: retarget face missing"
                    )
                active.remove(face)
                active.add(
                    _canonical(
                        tuple(split.v if c == split.u else c for c in face)  # type: ignore[arg-type]
                    )
                )
            for face in split.restore:
                active.add(_canonical(face))
        used = sorted({c for face in active for c in face})
        remap = {old: new for new, old in enumerate(used)}
        vertices = self._positions[used]
        faces = [(remap[a], remap[b], remap[c]) for a, b, c in active]
        return TriMesh(vertices, faces)

    @property
    def base_mesh(self) -> TriMesh:
        return self.mesh_at(0)

    @property
    def full_mesh(self) -> TriMesh:
        return self.mesh_at(self.split_count)

    def __repr__(self) -> str:
        return (
            f"ProgressiveMeshPM(base={self.base_vertex_count}v, "
            f"splits={self.split_count})"
        )


def simplify_to_progressive(
    mesh: TriMesh, target_vertices: int
) -> ProgressiveMeshPM:
    """Half-edge-collapse simplification down to ``target_vertices``.

    Collapses the shortest legal edge first (a classic geometric error
    proxy); an edge ``(u, v)`` is legal when the link condition holds:
    the common neighbours of ``u`` and ``v`` are exactly the third
    vertices of their shared faces, which preserves the manifold
    topology.  Simplification stops early if no legal edge remains.
    """
    if target_vertices < 3:
        raise MeshError(f"target must be >= 3 vertices, got {target_vertices}")
    if mesh.face_count == 0:
        raise MeshError("cannot simplify a mesh with no faces")

    positions = mesh.vertices.copy()
    faces: set[Face] = {
        _canonical((int(a), int(b), int(c))) for a, b, c in mesh.faces
    }
    vertex_faces: dict[int, set[Face]] = {}
    for face in faces:
        for c in face:
            vertex_faces.setdefault(c, set()).add(face)
    active = set(vertex_faces)

    def neighbors(vertex: int) -> set[int]:
        out: set[int] = set()
        for face in vertex_faces.get(vertex, ()):
            out.update(face)
        out.discard(vertex)
        return out

    version = {v: 0 for v in active}
    heap: list[tuple[float, int, int, int, int]] = []

    def push_edges_of(vertex: int) -> None:
        for n in neighbors(vertex):
            a, b = (vertex, n) if vertex < n else (n, vertex)
            length = float(np.linalg.norm(positions[a] - positions[b]))
            heapq.heappush(heap, (length, a, b, version[a], version[b]))

    for v in list(active):
        for n in neighbors(v):
            if v < n:
                length = float(np.linalg.norm(positions[v] - positions[n]))
                heapq.heappush(heap, (length, v, n, 0, 0))

    collapses: list[VertexSplit] = []
    while len(active) > target_vertices and heap:
        _, u, v, ver_u, ver_v = heapq.heappop(heap)
        if u not in active or v not in active:
            continue
        if version[u] != ver_u or version[v] != ver_v:
            continue
        shared = vertex_faces[u] & vertex_faces[v]
        if not shared:
            continue
        # Link condition: common neighbours == third corners of shared faces.
        third = {c for face in shared for c in face} - {u, v}
        if neighbors(u) & neighbors(v) != third:
            continue
        retarget_src = [f for f in vertex_faces[v] if f not in shared]
        # The collapsed forms must not collide with existing faces --
        # in either orientation (a same-vertex face of opposite winding
        # would create a degenerate back-to-back "pillow", as when
        # collapsing a tetrahedron edge).
        collapsed_forms = [
            _canonical(tuple(u if c == v else c for c in face))  # type: ignore[arg-type]
            for face in retarget_src
        ]
        def collides(face: Face) -> bool:
            reversed_form = _canonical((face[0], face[2], face[1]))
            return face in faces or reversed_form in faces

        if any(collides(f) for f in collapsed_forms):
            continue
        if len(set(collapsed_forms)) != len(collapsed_forms):
            continue

        # Perform the collapse.
        for face in shared:
            faces.discard(face)
            for c in face:
                vertex_faces[c].discard(face)
        for face, new_face in zip(retarget_src, collapsed_forms):
            faces.discard(face)
            for c in face:
                vertex_faces[c].discard(face)
            faces.add(new_face)
            for c in new_face:
                vertex_faces.setdefault(c, set()).add(new_face)
        active.discard(v)
        vertex_faces.pop(v, None)
        collapses.append(
            VertexSplit(
                u=u,
                v=v,
                v_position=positions[v].copy(),
                retarget=tuple(collapsed_forms),
                restore=tuple(shared),
            )
        )
        version[u] += 1
        push_edges_of(u)

    base_faces = tuple(sorted(faces))
    base_ids = tuple(sorted(active))
    # Splits replay in reverse collapse order.
    splits = tuple(reversed(collapses))
    return ProgressiveMeshPM(positions, base_ids, base_faces, splits)
