"""1-to-4 midpoint subdivision with parent tracking.

This implements the regular subdivision step from Section III of the
paper (Figures 1-2): every edge of the coarse mesh receives a midpoint
vertex, and every triangle is replaced by four smaller triangles.  The
inserted vertices are the ones the wavelet layer later displaces; the
coefficient of an inserted vertex is its displacement from the parent
edge midpoint, so the subdivision step must remember which edge each
new vertex came from (:attr:`SubdivisionStep.parent_edges`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MeshError
from repro.mesh.trimesh import Edge, TriMesh, ordered_edge

__all__ = ["SubdivisionStep", "midpoint_subdivide", "subdivide_times"]


@dataclass(frozen=True)
class SubdivisionStep:
    """The result of one midpoint subdivision.

    Attributes
    ----------
    coarse:
        The input mesh ``M^j``.
    fine:
        The subdivided mesh: same first ``coarse.vertex_count`` vertices,
        followed by one midpoint vertex per coarse edge.
    parent_edges:
        For each inserted vertex (indexed from 0), the coarse edge
        ``(a, b)`` whose midpoint it is.  Inserted vertex ``i`` has fine
        index ``coarse.vertex_count + i``.
    edge_to_new_vertex:
        Inverse map: coarse edge -> fine vertex index of its midpoint.
    """

    coarse: TriMesh
    fine: TriMesh
    parent_edges: tuple[Edge, ...]
    edge_to_new_vertex: dict[Edge, int] = field(repr=False)

    @property
    def inserted_count(self) -> int:
        """Number of vertices added by this step (== coarse edge count)."""
        return len(self.parent_edges)

    def fine_index(self, inserted: int) -> int:
        """Fine-mesh vertex index of the ``inserted``-th new vertex."""
        if not 0 <= inserted < self.inserted_count:
            raise MeshError(
                f"inserted vertex {inserted} out of range "
                f"[0, {self.inserted_count})"
            )
        return self.coarse.vertex_count + inserted

    def parent_midpoint(self, inserted: int) -> np.ndarray:
        """Position of the parent edge midpoint in the *coarse* mesh.

        This is the "predicted" position ``v_{4'}`` of the paper; the
        wavelet coefficient is the fine vertex position minus this.
        """
        a, b = self.parent_edges[inserted]
        return (self.coarse.vertices[a] + self.coarse.vertices[b]) / 2.0


def midpoint_subdivide(mesh: TriMesh) -> SubdivisionStep:
    """Split every triangle of ``mesh`` into four.

    The fine mesh keeps all coarse vertices (same indices) and appends
    one vertex at each coarse edge midpoint.  Each coarse face
    ``(a, b, c)`` becomes the four faces::

        (a, m_ab, m_ac), (m_ab, b, m_bc), (m_ac, m_bc, c), (m_ab, m_bc, m_ac)

    which preserves orientation.
    """
    if mesh.face_count == 0:
        raise MeshError("cannot subdivide a mesh with no faces")
    edges = mesh.edges()
    base = mesh.vertex_count
    edge_to_new = {edge: base + i for i, edge in enumerate(edges)}

    midpoints = np.empty((len(edges), 3), dtype=float)
    for i, (a, b) in enumerate(edges):
        midpoints[i] = (mesh.vertices[a] + mesh.vertices[b]) / 2.0
    fine_vertices = np.vstack([mesh.vertices, midpoints])

    fine_faces = np.empty((mesh.face_count * 4, 3), dtype=int)
    for fi, (a, b, c) in enumerate(mesh.faces):
        a, b, c = int(a), int(b), int(c)
        m_ab = edge_to_new[ordered_edge(a, b)]
        m_bc = edge_to_new[ordered_edge(b, c)]
        m_ac = edge_to_new[ordered_edge(a, c)]
        fine_faces[4 * fi + 0] = (a, m_ab, m_ac)
        fine_faces[4 * fi + 1] = (m_ab, b, m_bc)
        fine_faces[4 * fi + 2] = (m_ac, m_bc, c)
        fine_faces[4 * fi + 3] = (m_ab, m_bc, m_ac)

    fine = TriMesh(fine_vertices, fine_faces)
    return SubdivisionStep(
        coarse=mesh,
        fine=fine,
        parent_edges=tuple(edges),
        edge_to_new_vertex=dict(edge_to_new),
    )


def subdivide_times(mesh: TriMesh, levels: int) -> list[SubdivisionStep]:
    """Apply :func:`midpoint_subdivide` ``levels`` times.

    Returns the list of steps from coarsest to finest; step ``j`` maps
    ``M^j`` to the (undeformed) ``M^{j+1}``.
    """
    if levels < 0:
        raise MeshError("levels must be non-negative")
    steps: list[SubdivisionStep] = []
    current = mesh
    for _ in range(levels):
        step = midpoint_subdivide(current)
        steps.append(step)
        current = step.fine
    return steps
