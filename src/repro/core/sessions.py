"""Concrete session policies: the pluggable quarters of each client.

The unified drive loop lives in :class:`repro.sim.session.ClientSession`;
this module supplies the :class:`~repro.sim.session.SessionPolicy`
implementations that turn it into each of the repo's clients:

* :class:`MotionAwareSessionPolicy` -- the paper's full stack: speed ->
  ``w_min`` mapping raised by a :class:`DegradationController`, the
  motion-aware buffer manager (Kalman prediction + direction-allocated
  prefetching + probability eviction), quote/commit server shipping
  with the no-reship ``UidSet``, and rollback of phantom blocks on
  failed transfers.
* :class:`NaiveSessionPolicy` -- highest-resolution, object-granular
  retrieval over a whole-object R*-tree with plain LRU caching; no
  resolution to shed on failure.
* :class:`IncrementalSessionPolicy` -- Algorithm 1's incremental
  continuous retrieval (a :class:`ContinuousRetrievalClient`) as a
  policy, used by the fleet simulation.

``MotionAwareSystem``/``NaiveSystem`` and the fleet are thin
configurations of ``ClientSession`` over these policies.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.buffering.manager import MotionAwareBufferManager, TickResult
from repro.core.resilience import DegradationController
from repro.core.resolution import LinearMapper, SpeedResolutionMapper, clamp_speed
from repro.core.retrieval import ContinuousRetrievalClient, PreparedStep
from repro.geometry.box import Box
from repro.geometry.grid import Grid
from repro.index.bulk import bulk_load
from repro.index.rstar import RStarTree
from repro.index.rtree import RTree
from repro.server.server import BlockQuote, Server
from repro.sim.session import SessionResult, TickPlan, TransferOutcome
from repro.store.uids import EMPTY_UIDS, UidSet

if TYPE_CHECKING:
    from repro.core.system import SystemConfig

__all__ = [
    "MotionAwareSessionPolicy",
    "NaiveSessionPolicy",
    "IncrementalSessionPolicy",
    "LRUObjectCache",
    "build_naive_index",
]


class LRUObjectCache:
    """Byte-bounded LRU cache of whole objects (naive client state)."""

    def __init__(self, capacity_bytes: int) -> None:
        self._capacity = capacity_bytes
        self._items: OrderedDict[int, int] = OrderedDict()  # id -> bytes
        self._bytes = 0

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._items

    def touch(self, object_id: int) -> None:
        self._items.move_to_end(object_id)

    def add(self, object_id: int, size: int) -> None:
        if object_id in self._items:
            self.touch(object_id)
            return
        while self._bytes + size > self._capacity and self._items:
            _, evicted = self._items.popitem(last=False)
            self._bytes -= evicted
        if self._bytes + size <= self._capacity:
            self._items[object_id] = size
            self._bytes += size


def build_naive_index(server: Server) -> RTree:
    """Whole-object R*-tree over the database footprints.

    Built once and shared when many naive clients run against one
    server (the index is read-only at query time).
    """
    items = [(obj.footprint, obj.object_id) for obj in server.database.objects]
    return bulk_load(items, tree_class=RStarTree)


@dataclass
class _MotionTickState:
    """Opaque plan state threaded from ``plan`` to ``commit``/``abort``."""

    tick: TickResult
    demand_quotes: list[BlockQuote]
    exclude: UidSet
    bases: frozenset[int]
    w_min: float
    demand_io: int


class MotionAwareSessionPolicy:
    """The paper's motion-aware stack as a session policy."""

    def __init__(
        self,
        server: Server,
        config: "SystemConfig",
        *,
        client_id: int = 0,
        mapper: SpeedResolutionMapper | None = None,
    ) -> None:
        self._server = server
        self._config = config
        self._client_id = client_id
        self._mapper = mapper if mapper is not None else LinearMapper()
        self._grid = Grid(config.space, config.grid_shape)
        self._manager = MotionAwareBufferManager(
            self._grid,
            config.buffer_bytes,
            server.database.block_bytes_fn(self._grid),
            block_rows=server.database.block_rows_fn(self._grid),
        )
        self._sent_uids: UidSet = EMPTY_UIDS
        self._degradation = DegradationController(config.resilience)

    # -- components (shared with the frozen legacy loop) -----------------------------

    @property
    def mapper(self) -> SpeedResolutionMapper:
        return self._mapper

    @property
    def grid(self) -> Grid:
        return self._grid

    @property
    def manager(self) -> MotionAwareBufferManager:
        return self._manager

    @property
    def degradation(self) -> DegradationController:
        return self._degradation

    @property
    def sent_uids(self) -> UidSet:
        """Every record uid the client has successfully received."""
        return self._sent_uids

    @sent_uids.setter
    def sent_uids(self, uids: UidSet) -> None:
        self._sent_uids = uids

    def quote_cells(
        self,
        cells: tuple[tuple[int, ...], ...],
        w_min: float,
        exclude: UidSet,
        assume_bases: frozenset[int],
    ) -> tuple[list[BlockQuote], UidSet, frozenset[int]]:
        """Price a set of blocks without committing server state."""
        quotes: list[BlockQuote] = []
        for cell in cells:
            quote = self._server.quote_block(
                self._client_id,
                self._grid.cell_box(cell),
                w_min,
                exclude,
                assume_shipped_bases=assume_bases,
            )
            quotes.append(quote)
            exclude = exclude | quote.new_uids
            assume_bases = assume_bases | quote.new_base_ids
        return quotes, exclude, assume_bases

    # -- SessionPolicy interface -----------------------------------------------------

    def resolution(self, now: float, speed: float) -> tuple[float, bool]:
        base_w_min = float(self._mapper(speed))
        return (
            self._degradation.effective_w_min(now, base_w_min),
            self._degradation.is_degraded(now),
        )

    def plan(
        self,
        index: int,
        now: float,
        position: np.ndarray,
        speed: float,
        w_min: float,
    ) -> TickPlan:
        query = self._config.query_box(position)
        tick = self._manager.tick(position, speed, query, w_min)
        if not tick.contacted_server:
            return TickPlan(contacted=False)
        demand_quotes, exclude, bases = self.quote_cells(
            tick.demand_cells, w_min, self._sent_uids, frozenset()
        )
        demand_payload = sum(q.payload_bytes for q in demand_quotes)
        demand_io = sum(q.io_node_reads for q in demand_quotes)
        return TickPlan(
            contacted=True,
            demand_payload_bytes=demand_payload,
            response_io_reads=demand_io,
            state=_MotionTickState(
                tick=tick,
                demand_quotes=demand_quotes,
                exclude=exclude,
                bases=bases,
                w_min=w_min,
                demand_io=demand_io,
            ),
        )

    def commit(
        self, plan: TickPlan, outcome: TransferOutcome, result: SessionResult
    ) -> int:
        st: _MotionTickState = plan.state
        prefetch_quotes, exclude, _ = self.quote_cells(
            st.tick.prefetch_cells, st.w_min, st.exclude, st.bases
        )
        for quote in st.demand_quotes + prefetch_quotes:
            self._server.commit_quote(quote)
            result.records_shipped += len(quote.new_uids)
        self._sent_uids = exclude
        prefetch_payload = sum(q.payload_bytes for q in prefetch_quotes)
        prefetch_io = sum(q.io_node_reads for q in prefetch_quotes)
        result.demand_bytes += plan.demand_payload_bytes
        result.prefetch_bytes += prefetch_payload
        result.io_node_reads += st.demand_io + prefetch_io
        return prefetch_payload

    def abort(
        self,
        plan: TickPlan,
        outcome: TransferOutcome,
        failed_at: float,
        result: SessionResult,
    ) -> None:
        # Stale-serve: render from what the buffer still holds, drop
        # the phantom blocks, degrade.
        st: _MotionTickState = plan.state
        self._manager.rollback(st.tick.demand_cells + st.tick.prefetch_cells)
        result.io_node_reads += st.demand_io
        self._degradation.note_failure(failed_at)


@dataclass
class _NaiveTickState:
    missing: list[int]
    io_reads: int


class NaiveSessionPolicy:
    """Highest-resolution, object-granular retrieval with LRU caching.

    The naive client has no resolution to shed: a failed transfer
    simply leaves its objects uncached, to be refetched in full next
    tick -- which is exactly why it suffers more under a degraded link.
    ``index`` lets fleets share one read-only whole-object R*-tree
    across clients (see :func:`build_naive_index`).
    """

    def __init__(
        self,
        server: Server,
        config: "SystemConfig",
        *,
        index: RTree | None = None,
        page_bytes: int = 4096,
    ) -> None:
        db = server.database
        self._config = config
        self._index = index if index is not None else build_naive_index(server)
        self._sizes = {obj.object_id: obj.total_bytes for obj in db.objects}
        # I/O to read one object's full data off disk, in pages.
        self._object_io = {
            oid: max(size // page_bytes, 1) for oid, size in self._sizes.items()
        }
        self._cache = LRUObjectCache(config.buffer_bytes)

    # -- components (shared with the frozen legacy loop) -----------------------------

    @property
    def index(self) -> RTree:
        return self._index

    @property
    def cache(self) -> LRUObjectCache:
        return self._cache

    @property
    def object_sizes(self) -> dict[int, int]:
        return self._sizes

    @property
    def object_io(self) -> dict[int, int]:
        return self._object_io

    # -- SessionPolicy interface -----------------------------------------------------

    def resolution(self, now: float, speed: float) -> tuple[float, bool]:
        return 0.0, False

    def plan(
        self,
        index: int,
        now: float,
        position: np.ndarray,
        speed: float,
        w_min: float,
    ) -> TickPlan:
        query = self._config.query_box(position)
        self._index.stats.push()
        object_ids = self._index.search(query)
        index_io = self._index.stats.pop_delta().node_reads
        payload = 0
        data_io = 0
        missing = [oid for oid in object_ids if oid not in self._cache]
        for oid in object_ids:
            if oid in self._cache:
                self._cache.touch(oid)
        for oid in missing:
            payload += self._sizes[oid]
            data_io += self._object_io[oid]
        if not missing:
            return TickPlan(contacted=False)
        return TickPlan(
            contacted=True,
            demand_payload_bytes=payload,
            response_io_reads=index_io + data_io,
            state=_NaiveTickState(missing=missing, io_reads=index_io + data_io),
        )

    def commit(
        self, plan: TickPlan, outcome: TransferOutcome, result: SessionResult
    ) -> int:
        st: _NaiveTickState = plan.state
        for oid in st.missing:
            self._cache.add(oid, self._sizes[oid])
        result.demand_bytes += plan.demand_payload_bytes
        result.records_shipped += len(st.missing)
        result.io_node_reads += st.io_reads
        return 0

    def abort(
        self,
        plan: TickPlan,
        outcome: TransferOutcome,
        failed_at: float,
        result: SessionResult,
    ) -> None:
        st: _NaiveTickState = plan.state
        result.io_node_reads += st.io_reads


class IncrementalSessionPolicy:
    """Algorithm 1's incremental retrieval client as a session policy.

    The fleet's default client: plans region differences against its
    history, answers them server-side (``prepare_step``), and
    integrates once the session's transport has moved the bytes
    (``finalize_step``).  On a failed transfer nothing is integrated
    and the planning state is not advanced, so the next frame replans
    the same missing region.
    """

    def __init__(
        self,
        client: ContinuousRetrievalClient,
        space: Box,
        query_frac: float,
    ) -> None:
        self._client = client
        self._space = space
        self._query_frac = query_frac

    @property
    def client(self) -> ContinuousRetrievalClient:
        return self._client

    def resolution(self, now: float, speed: float) -> tuple[float, bool]:
        return float(self._client.mapper(clamp_speed(speed))), False

    def plan(
        self,
        index: int,
        now: float,
        position: np.ndarray,
        speed: float,
        w_min: float,
    ) -> TickPlan:
        frame = Box.from_center(position, self._query_frac * self._space.extents)
        prepared = self._client.prepare_step(position, speed, frame, now=now)
        if not prepared.contacted:
            # Nothing to transport: settle the bookkeeping immediately.
            self._client.finalize_step(prepared, 0.0)
            return TickPlan(contacted=False)
        return TickPlan(
            contacted=True,
            demand_payload_bytes=prepared.payload_bytes,
            state=prepared,
        )

    def commit(
        self, plan: TickPlan, outcome: TransferOutcome, result: SessionResult
    ) -> int:
        prepared: PreparedStep = plan.state
        step = self._client.finalize_step(prepared, outcome.elapsed_s)
        result.demand_bytes += step.payload_bytes
        result.records_shipped += step.records_received
        result.io_node_reads += step.io_node_reads
        return 0

    def abort(
        self,
        plan: TickPlan,
        outcome: TransferOutcome,
        failed_at: float,
        result: SessionResult,
    ) -> None:
        prepared: PreparedStep = plan.state
        result.io_node_reads += prepared.io_node_reads
