"""Multi-client simulation: many tourists sharing one server.

The paper's motivation has *many* mobile clients querying the server at
once; its related work cites the server-side load of large query
volumes.  This module simulates a fleet of clients whose responses
share the server's finite uplink, on the discrete-event kernel
(:mod:`repro.sim`):

* every client is a :class:`~repro.sim.session.ClientSession` over its
  own policy, link and seeded random streams (derived exactly like
  :meth:`~repro.core.system.SystemConfig.build_link`, so two clients
  never share a generator and adding a client never shifts another's
  draws);
* tick ``t`` fires as a kernel event at ``t * tick_seconds`` for every
  client, in client order -- the ``(time, seq)`` event ordering
  reproduces round-robin service within a tick;
* the server uplink is one shared :class:`~repro.sim.resources.FifoResource`:
  a transfer holds it for its serialisation time and the backlog
  *carries across ticks*, so a saturated tick leaves the next one
  queueing behind it (the pre-kernel loop wrongly reset the backlog
  every tick).  Demand queueing delay counts toward response time;
  prefetch holds the link without charging the tick that issued it.

The headline system property it demonstrates: because motion-aware
clients ship far fewer bytes, a server sustains many more of them
before queueing delay explodes (see ``benchmarks/bench_fleet.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.resilience import ResiliencePolicy, ResilientExchanger
from repro.core.resolution import LinearMapper, SpeedResolutionMapper
from repro.core.retrieval import ContinuousRetrievalClient
from repro.core.sessions import (
    IncrementalSessionPolicy,
    MotionAwareSessionPolicy,
    NaiveSessionPolicy,
    build_naive_index,
)
from repro.core.system import SystemConfig
from repro.errors import ConfigurationError
from repro.geometry.box import Box
from repro.motion.trajectory import Trajectory
from repro.net.faults import FaultInjector, FaultSchedule
from repro.net.link import LinkConfig, WirelessLink
from repro.net.messages import RegionRequest, RetrieveRequest
from repro.net.simclock import SimClock
from repro.server.server import Server
from repro.sim.kernel import Action, EventKernel
from repro.sim.resources import FifoResource
from repro.sim.session import ClientSession, LinkTransport, Transport
from repro.sim.streams import (
    BACKOFF_STREAM,
    FLEET_TOUR_STREAM,
    LINK_FAULTS_STREAM,
    LINK_LOSS_STREAM,
    derive_rng,
)

__all__ = [
    "FleetConfig",
    "FleetResult",
    "FleetTick",
    "make_flat_ticks",
    "drain_uplink",
    "simulate_fleet",
    "simulate_system_fleet",
]


@dataclass(frozen=True)
class FleetConfig:
    """Parameters of a fleet simulation.

    Attributes
    ----------
    query_frac:
        Query frame side as a fraction of the space side.
    link:
        Per-client wireless link parameters.
    server_uplink_bps:
        Total bytes-per-second the server can push to all clients
        combined; transfers queue behind each other once it saturates.
    tick_seconds:
        Simulated time between consecutive query frames.  Stretching it
        gives the shared uplink longer to drain between ticks, so the
        same payloads queue less.
    seed:
        Root of every random stream in the fleet; per-client generators
        are derived as ``(seed, client_id, role)``.
    faults, resilience:
        Optional link fault schedule and bounded-retry policy applied
        to every client (``resilience=None`` sends demand traffic over
        the bare link).
    grid_shape, buffer_bytes, io_time_per_node_s:
        Client-side buffer/IO parameters, used when the fleet runs full
        system stacks (:func:`simulate_system_fleet`).
    drive:
        ``"flat"`` (default) runs the tick loop directly -- every tick
        event is known up front at ``t * tick_seconds`` in ``(t,
        client)`` order, so the nested loop reproduces the kernel's
        ``(time, seq)`` service order exactly without materialising one
        closure per (tick, client); at 10k+ clients that removes the
        dominant scheduling overhead.  ``"kernel"`` keeps the explicit
        event-kernel scheduling as the bit-identical cross-check.
    """

    space: Box
    query_frac: float = 0.08
    link: LinkConfig = LinkConfig()
    server_uplink_bps: float = 1_024_000.0
    tick_seconds: float = 1.0
    seed: int = 0
    faults: FaultSchedule | None = None
    resilience: ResiliencePolicy | None = None
    grid_shape: tuple[int, int] = (20, 20)
    buffer_bytes: int = 64 * 1024
    io_time_per_node_s: float = 0.0
    drive: str = "flat"

    def __post_init__(self) -> None:
        if self.drive not in ("flat", "kernel"):
            raise ConfigurationError(
                f"unknown fleet drive {self.drive!r} "
                "(expected 'flat' or 'kernel')"
            )
        if self.space.ndim != 2:
            raise ConfigurationError("fleet space must be 2-D")
        if not 0.0 < self.query_frac <= 1.0:
            raise ConfigurationError("query_frac must be in (0, 1]")
        if self.server_uplink_bps <= 0:
            raise ConfigurationError("server uplink must be positive")
        if self.tick_seconds <= 0:
            raise ConfigurationError("tick duration must be positive")
        if self.buffer_bytes <= 0:
            raise ConfigurationError("buffer must be positive")
        if self.io_time_per_node_s < 0:
            raise ConfigurationError("io time must be non-negative")

    def build_link(self, client_id: int) -> WirelessLink:
        """Client ``client_id``'s fault-injected link, seeded per client."""
        injector = None
        if self.faults is not None:
            injector = FaultInjector(
                self.faults,
                rng=derive_rng(self.seed, client_id, LINK_FAULTS_STREAM),
            )
        return WirelessLink(
            self.link,
            rng=derive_rng(self.seed, client_id, LINK_LOSS_STREAM),
            faults=injector,
        )

    def build_transport(self, link: WirelessLink, client_id: int) -> Transport:
        """The demand-path transport over ``link`` (resilient when configured)."""
        if self.resilience is not None:
            return ResilientExchanger(
                link,
                self.resilience,
                rng=derive_rng(self.seed, client_id, BACKOFF_STREAM),
            )
        return LinkTransport(link)

    def system_config(self) -> SystemConfig:
        """This fleet's parameters as a per-client :class:`SystemConfig`."""
        return SystemConfig(
            space=self.space,
            grid_shape=self.grid_shape,
            buffer_bytes=self.buffer_bytes,
            query_frac=self.query_frac,
            link=self.link,
            io_time_per_node_s=self.io_time_per_node_s,
            faults=self.faults,
            resilience=(
                self.resilience if self.resilience is not None else ResiliencePolicy()
            ),
            seed=self.seed,
        )


@dataclass
class FleetResult:
    """Aggregates of one fleet run."""

    clients: int = 0
    ticks: int = 0
    demand_bytes: int = 0
    prefetch_bytes: int = 0
    total_requests: int = 0
    total_records: int = 0
    failed_requests: int = 0
    response_times: list[float] = field(default_factory=list)
    max_queue_delay_s: float = 0.0

    @property
    def total_bytes(self) -> int:
        return self.demand_bytes + self.prefetch_bytes

    @property
    def avg_response_s(self) -> float:
        if not self.response_times:
            return 0.0
        return float(np.mean(self.response_times))

    @property
    def p95_response_s(self) -> float:
        if not self.response_times:
            return 0.0
        return float(np.percentile(self.response_times, 95))


@dataclass(frozen=True)
class FleetTick:
    """One tick of an entire flat-drive fleet, as columns not objects.

    Row ``i`` is client ``client_ids[i]``'s query for this tick: the
    window ``[low[i], high[i]]`` at value band ``[w_min[i], w_max[i]]``
    (closed, single region, no excludes -- the cold flat-drive shape).
    The coordinator's whole-fleet path
    (:meth:`~repro.shard.coordinator.ShardCoordinator.execute_fleet_tick`)
    consumes these columns directly: one plan broadcast and one scatter
    per shard for the *whole fleet*, instead of one coordinator entry
    per client.  :meth:`to_requests` lowers a tick to the equivalent
    per-client :class:`~repro.net.messages.RetrieveRequest` objects,
    which is what the parity tests diff against.
    """

    timestamp: int
    client_ids: np.ndarray  # (C,) int64, unique within the tick
    low: np.ndarray  # (C, d) query-window corners
    high: np.ndarray  # (C, d)
    w_min: np.ndarray  # (C,)
    w_max: np.ndarray  # (C,)

    def __post_init__(self) -> None:
        count = int(self.client_ids.shape[0])
        if self.low.shape != self.high.shape or self.low.ndim != 2:
            raise ConfigurationError(
                f"tick corners must be matching (C, d) stacks, got "
                f"{self.low.shape} and {self.high.shape}"
            )
        if self.low.shape[0] != count or self.w_min.shape != (count,) or (
            self.w_max.shape != (count,)
        ):
            raise ConfigurationError(
                f"tick columns disagree on client count {count}"
            )
        if count and np.unique(self.client_ids).size != count:
            raise ConfigurationError(
                "tick client ids must be unique (one query per client)"
            )
        bad_band = (
            (self.w_min < 0.0) | (self.w_max > 1.0) | (self.w_min > self.w_max)
        )
        if bool(bad_band.any()):
            i = int(np.flatnonzero(bad_band)[0])
            raise ConfigurationError(
                f"invalid value band [{self.w_min[i]}, {self.w_max[i]}] for "
                f"client {int(self.client_ids[i])}; need 0 <= min <= max <= 1"
            )
        if bool((self.low > self.high).any()):
            raise ConfigurationError("tick windows must have low <= high")

    @property
    def count(self) -> int:
        return int(self.client_ids.shape[0])

    def to_requests(self) -> list[RetrieveRequest]:
        """This tick as per-client requests (the parity reference)."""
        return [
            RetrieveRequest(
                timestamp=self.timestamp,
                client_id=int(self.client_ids[i]),
                regions=(
                    RegionRequest(
                        region=Box(self.low[i], self.high[i]),
                        w_min=float(self.w_min[i]),
                        w_max=float(self.w_max[i]),
                    ),
                ),
            )
            for i in range(self.count)
        ]


def make_flat_ticks(
    space: Box,
    clients: int,
    ticks: int,
    *,
    seed: int,
    query_frac: float = 0.08,
    w_max_range: tuple[float, float] = (0.5, 1.0),
) -> list[FleetTick]:
    """Synthesise a whole fleet's linear tours as per-tick columns.

    Every client walks a straight tour between two seeded points of
    ``space`` and queries the ``query_frac``-sized window centred on
    its position with a fixed per-client band ``[0, w_max]`` -- the
    cold flat-drive workload at fleet scale, built entirely with
    vectorised numpy (no per-client Python objects, which is what lets
    ``bench_fleet --drive flat`` reach 100k+ clients).  Draws come from
    one derived stream in a single ``(C, 5)`` block, so a larger fleet
    extends a smaller one's tours rather than reshuffling them.

    Per-client bands are quantised to eight resolution stops over
    ``w_max_range`` -- clients request discrete resolutions, exactly as
    the speed-resolution mapper hands them out -- so the top stop (the
    full band, which is what pulls base rows and hence base-mesh
    shipping) is actually reachable, not a measure-zero draw.
    """
    if clients < 1:
        raise ConfigurationError(f"fleet needs >= 1 client, got {clients}")
    if ticks < 1:
        raise ConfigurationError(f"fleet needs >= 1 tick, got {ticks}")
    if not 0.0 < query_frac <= 1.0:
        raise ConfigurationError("query_frac must be in (0, 1]")
    lo, hi = w_max_range
    if not 0.0 <= lo <= hi <= 1.0:
        raise ConfigurationError(
            f"w_max_range must satisfy 0 <= lo <= hi <= 1, got {w_max_range}"
        )
    rng = derive_rng(seed, 0, FLEET_TOUR_STREAM)
    draws = rng.random((clients, 5))
    span = space.high - space.low
    starts = space.low + draws[:, 0:2] * span
    ends = space.low + draws[:, 2:4] * span
    stops = 8
    w_max = lo + np.ceil(draws[:, 4] * stops) / stops * (hi - lo)
    w_min = np.zeros(clients, dtype=np.float64)
    half = 0.5 * query_frac * span
    client_ids = np.arange(clients, dtype=np.int64)
    out: list[FleetTick] = []
    for t in range(ticks):
        frac = 0.0 if ticks == 1 else t / (ticks - 1)
        centres = starts + frac * (ends - starts)
        low = np.clip(centres - half, space.low, space.high)
        high = np.clip(centres + half, space.low, space.high)
        out.append(
            FleetTick(
                timestamp=t,
                client_ids=client_ids,
                low=low,
                high=high,
                w_min=w_min,
                w_max=w_max,
            )
        )
    return out


def drain_uplink(
    payload_bytes: np.ndarray,
    uplink_bps: float,
    tick_seconds: float,
    backlog_s: float = 0.0,
) -> tuple[np.ndarray, float]:
    """FIFO-serialise one tick's responses through the shared uplink.

    The vectorised twin of queueing the tick's transfers through a
    :class:`~repro.sim.resources.FifoResource` in client order:
    response ``i`` finishes at ``backlog + cumsum(bytes / bps)[i]``
    after its query fired, and whatever has not drained within
    ``tick_seconds`` carries into the next tick's backlog.  Returns
    ``(response_s, new_backlog_s)``.
    """
    if uplink_bps <= 0:
        raise ConfigurationError("server uplink must be positive")
    if tick_seconds <= 0:
        raise ConfigurationError("tick duration must be positive")
    if backlog_s < 0:
        raise ConfigurationError("backlog must be non-negative")
    transfer_s = np.asarray(payload_bytes, dtype=np.float64) / uplink_bps
    if transfer_s.ndim != 1:
        raise ConfigurationError("payload_bytes must be a flat array")
    response_s = backlog_s + np.cumsum(transfer_s)
    end = float(response_s[-1]) if response_s.size else backlog_s
    return response_s, max(0.0, end - tick_seconds)


def _tick_action(session: ClientSession, tour: Trajectory, t: int) -> Action:
    def fire(kernel: EventKernel) -> None:
        session.tick(t, kernel.now, tour.positions[t], tour.nominal_speed)

    return fire


def _drive_fleet(
    sessions: list[ClientSession],
    tours: list[Trajectory],
    config: FleetConfig,
    uplink: FifoResource,
) -> FleetResult:
    """Fire every (tick, client) event and aggregate the fleet.

    All tick events happen at ``t * tick_seconds`` in ``(t, client)``
    order, serving clients round-robin within each tick with the
    uplink backlog carrying across ticks.  The default ``"flat"``
    drive runs exactly that nested loop; the ``"kernel"`` drive
    schedules one event per (tick, client) on the
    :class:`~repro.sim.kernel.EventKernel`, whose ``(time, seq)``
    total order fires them in the same sequence -- the two drives are
    bit-identical, the flat one just skips building ``ticks x
    clients`` closures (the scheduling cost that dominated 10k-client
    fleets).
    """
    ticks = min(len(tour) for tour in tours)
    if config.drive == "flat":
        for t in range(ticks):
            when = t * config.tick_seconds
            for session, tour in zip(sessions, tours):
                session.tick(t, when, tour.positions[t], tour.nominal_speed)
    else:
        kernel = EventKernel()
        for t in range(ticks):
            when = t * config.tick_seconds
            for i, (session, tour) in enumerate(zip(sessions, tours)):
                kernel.schedule_at(
                    when,
                    _tick_action(session, tour, t),
                    label=f"tick:{t}:client:{i}",
                )
        kernel.run()
    result = FleetResult(
        clients=len(sessions),
        ticks=ticks,
        max_queue_delay_s=uplink.max_queued_s,
    )
    for session in sessions:
        r = session.result
        result.response_times.extend(r.responses)
        result.demand_bytes += r.demand_bytes
        result.prefetch_bytes += r.prefetch_bytes
        result.total_requests += r.contacts
        result.total_records += r.records_shipped
        result.failed_requests += r.stale_served_ticks
    return result


def simulate_fleet(
    server: Server,
    tours: list[Trajectory],
    config: FleetConfig,
    *,
    mapper: SpeedResolutionMapper | None = None,
    use_coverage: bool = True,
) -> FleetResult:
    """Run one incremental-retrieval client per tour on the kernel.

    Each client plans region differences against its own history
    (Algorithm 1 with semantic caching by default) and ships the
    demanded payload over its own seeded link, serialised through the
    shared server uplink.
    """
    if not tours:
        raise ConfigurationError("fleet needs at least one tour")
    mapper = mapper if mapper is not None else LinearMapper()
    uplink = FifoResource(name="server-uplink")
    sessions: list[ClientSession] = []
    for i, tour in enumerate(tours):
        server.reset_client(i)
        link = config.build_link(i)
        client = ContinuousRetrievalClient(
            server,
            link,
            SimClock(),
            client_id=i,
            mapper=mapper,
            use_coverage=use_coverage,
        )
        policy = IncrementalSessionPolicy(client, config.space, config.query_frac)
        sessions.append(
            ClientSession(
                policy,
                config.build_transport(link, i),
                io_time_per_node_s=config.io_time_per_node_s,
                uplink=uplink,
                uplink_bps=config.server_uplink_bps,
            )
        )
    return _drive_fleet(sessions, tours, config, uplink)


def simulate_system_fleet(
    server: Server,
    tours: list[Trajectory],
    config: FleetConfig,
    *,
    system: str = "motion",
    mapper: SpeedResolutionMapper | None = None,
) -> FleetResult:
    """Run one full system stack per tour on the kernel.

    ``system="motion"`` fleets :class:`MotionAwareSessionPolicy` clients
    (buffer manager, prefetch, degradation); ``system="naive"`` fleets
    :class:`NaiveSessionPolicy` clients sharing one read-only
    whole-object R*-tree.  Both share the server uplink, which is where
    the byte savings of the motion-aware stack turn into a latency
    cliff for the naive one as the fleet grows.
    """
    if not tours:
        raise ConfigurationError("fleet needs at least one tour")
    if system not in ("motion", "naive"):
        raise ConfigurationError(
            f"unknown fleet system {system!r} (expected 'motion' or 'naive')"
        )
    sys_cfg = config.system_config()
    uplink = FifoResource(name="server-uplink")
    shared_index = build_naive_index(server) if system == "naive" else None
    sessions: list[ClientSession] = []
    for i, tour in enumerate(tours):
        server.reset_client(i)
        link = config.build_link(i)
        if system == "motion":
            policy: MotionAwareSessionPolicy | NaiveSessionPolicy = (
                MotionAwareSessionPolicy(server, sys_cfg, client_id=i, mapper=mapper)
            )
        else:
            policy = NaiveSessionPolicy(server, sys_cfg, index=shared_index)
        sessions.append(
            ClientSession(
                policy,
                config.build_transport(link, i),
                io_time_per_node_s=config.io_time_per_node_s,
                uplink=uplink,
                uplink_bps=config.server_uplink_bps,
            )
        )
    return _drive_fleet(sessions, tours, config, uplink)
