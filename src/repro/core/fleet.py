"""Multi-client simulation: many tourists sharing one server.

The paper's motivation has *many* mobile clients querying the server at
once; its related work cites the server-side load of large query
volumes.  This module simulates a fleet of continuous-retrieval clients
whose responses share the server's finite uplink: exchanges are
serialised through a single bottleneck, so a client's effective
response time includes the queueing delay behind other clients'
transfers.

The headline system property it demonstrates: because motion-aware
clients ship far fewer bytes, a server sustains many more of them
before queueing delay explodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.resolution import LinearMapper, SpeedResolutionMapper
from repro.core.retrieval import ContinuousRetrievalClient
from repro.errors import ConfigurationError
from repro.geometry.box import Box
from repro.motion.trajectory import Trajectory
from repro.net.link import LinkConfig, WirelessLink
from repro.net.simclock import SimClock
from repro.server.server import Server

__all__ = ["FleetConfig", "FleetResult", "simulate_fleet"]


@dataclass(frozen=True)
class FleetConfig:
    """Parameters of a fleet simulation.

    Attributes
    ----------
    query_frac:
        Query frame side as a fraction of the space side.
    link:
        Per-client wireless link parameters.
    server_uplink_bps:
        Total bytes-per-second the server can push to all clients
        combined; transfers queue behind each other once it saturates.
    tick_seconds:
        Wall time between consecutive query frames.
    """

    space: Box
    query_frac: float = 0.08
    link: LinkConfig = LinkConfig()
    server_uplink_bps: float = 1_024_000.0
    tick_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.space.ndim != 2:
            raise ConfigurationError("fleet space must be 2-D")
        if not 0.0 < self.query_frac <= 1.0:
            raise ConfigurationError("query_frac must be in (0, 1]")
        if self.server_uplink_bps <= 0:
            raise ConfigurationError("server uplink must be positive")
        if self.tick_seconds <= 0:
            raise ConfigurationError("tick duration must be positive")


@dataclass
class FleetResult:
    """Aggregates of one fleet run."""

    clients: int = 0
    ticks: int = 0
    total_bytes: int = 0
    total_requests: int = 0
    total_records: int = 0
    response_times: list[float] = field(default_factory=list)
    max_queue_delay_s: float = 0.0

    @property
    def avg_response_s(self) -> float:
        if not self.response_times:
            return 0.0
        return float(np.mean(self.response_times))

    @property
    def p95_response_s(self) -> float:
        if not self.response_times:
            return 0.0
        return float(np.percentile(self.response_times, 95))


def simulate_fleet(
    server: Server,
    tours: list[Trajectory],
    config: FleetConfig,
    *,
    mapper: SpeedResolutionMapper | None = None,
    use_coverage: bool = True,
) -> FleetResult:
    """Run one client per tour against a shared server uplink.

    All tours advance in lock-step ticks.  Within a tick, clients that
    need data issue their exchanges in round-robin order; the server's
    uplink serialises the payloads, so the *n*-th transfer of a busy
    tick waits for the first *n-1*.  A client's recorded response time
    is its own exchange time plus that queueing delay.
    """
    if not tours:
        raise ConfigurationError("fleet needs at least one tour")
    mapper = mapper if mapper is not None else LinearMapper()
    clients = []
    for i, tour in enumerate(tours):
        server.reset_client(i)
        clients.append(
            ContinuousRetrievalClient(
                server,
                WirelessLink(config.link),
                SimClock(),
                client_id=i,
                mapper=mapper,
                use_coverage=use_coverage,
            )
        )
    result = FleetResult(clients=len(clients))
    ticks = min(len(tour) for tour in tours)
    for t in range(ticks):
        uplink_backlog_s = 0.0
        for i, (client, tour) in enumerate(zip(clients, tours)):
            position = tour.positions[t]
            frame = Box.from_center(
                position, config.query_frac * config.space.extents
            )
            step = client.step(position, tour.nominal_speed, frame)
            if not step.contacted_server:
                result.response_times.append(0.0)
                continue
            # The server pushes this payload after the backlog ahead of it.
            serialisation_s = (
                step.payload_bytes * 8.0 / config.server_uplink_bps
            )
            queue_delay = uplink_backlog_s
            uplink_backlog_s += serialisation_s
            result.max_queue_delay_s = max(result.max_queue_delay_s, queue_delay)
            result.response_times.append(step.elapsed_s + queue_delay)
            result.total_bytes += step.payload_bytes
            result.total_records += step.records_received
            result.total_requests += 1
        result.ticks += 1
    return result
