"""View-direction-aware querying (the paper's view frustum, optional).

The evaluation drives rectangular query frames, but the introduction's
scenarios (head-mounted displays) really have a *view direction*.  This
module lets a client express wedge-shaped interest while reusing the
box-based access methods: query the wedge's bounding box on the server,
then drop records whose support region misses the wedge.

The filtering step is sound because a coefficient can only influence
pixels inside its support region's MBB: discarding records whose MBB
misses the wedge never removes visible detail.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.errors import GeometryError
from repro.geometry.vector import heading_angle
from repro.geometry.wedge import Wedge
from repro.wavelets.coefficients import CoefficientRecord

__all__ = ["view_wedge", "filter_records_in_view", "view_savings"]


def view_wedge(
    position: Sequence[float],
    velocity: Sequence[float],
    *,
    fov_degrees: float = 110.0,
    view_range: float = 100.0,
) -> Wedge:
    """The wedge a client moving with ``velocity`` is looking into.

    Heading follows the motion direction (the common AR assumption);
    a zero velocity yields a full disk (the user may look anywhere).
    """
    if not 0.0 < fov_degrees <= 360.0:
        raise GeometryError(f"fov must be in (0, 360], got {fov_degrees}")
    v = np.asarray(velocity, dtype=float)
    speed = float(np.linalg.norm(v))
    if speed == 0.0:
        return Wedge(position, 0.0, math.pi, view_range)
    half_angle = min(math.radians(fov_degrees) / 2.0, math.pi)
    return Wedge(position, heading_angle(v), half_angle, view_range)


def filter_records_in_view(
    records: Sequence[CoefficientRecord], wedge: Wedge
) -> list[CoefficientRecord]:
    """Keep only records whose support region can affect the view."""
    kept = []
    for record in records:
        footprint = record.support_box.project((0, 1))
        if wedge.intersects_box(footprint):
            kept.append(record)
    return kept


def view_savings(
    records: Sequence[CoefficientRecord], wedge: Wedge
) -> tuple[int, int]:
    """(bytes needed for the wedge, bytes of the full bounding box).

    Quantifies how much a direction-aware client saves over the
    rectangular frame covering the same view.
    """
    in_view = filter_records_in_view(records, wedge)
    return (
        sum(r.size_bytes for r in in_view),
        sum(r.size_bytes for r in records),
    )
