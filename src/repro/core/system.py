"""End-to-end systems: the paper's motion-aware stack vs the naive stack.

These drivers reproduce the overall-performance comparison of
Section VII-E (Figures 14/15):

* :class:`MotionAwareSystem` -- multi-resolution retrieval (speed ->
  ``w_min``), motion-aware buffer manager (Kalman prediction +
  direction-allocated prefetching + probability eviction), wavelet
  support-region index, and incremental delta requests (already-sent
  records are never re-shipped).
* :class:`NaiveSystem` -- always fetches objects at the highest
  resolution, indexes whole objects with an R*-tree (no multiresolution
  entries), and caches whole objects with plain LRU.

Both run over the same database, link model and tours.  Per tick the
*query response time* is the time until the current frame's data is
available: zero when everything is cached, otherwise connection cost +
round trip + server I/O time + transfer of the demanded payload at the
speed-degraded bandwidth.  Prefetch traffic is shipped in the
background: it counts toward total bytes but not response time.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.buffering.manager import MotionAwareBufferManager
from repro.core.resolution import LinearMapper, SpeedResolutionMapper
from repro.errors import ConfigurationError
from repro.geometry.box import Box
from repro.geometry.grid import Grid
from repro.index.bulk import bulk_load
from repro.index.rstar import RStarTree
from repro.motion.trajectory import Trajectory
from repro.net.link import LinkConfig
from repro.server.server import Server

__all__ = ["SystemConfig", "SystemRunResult", "MotionAwareSystem", "NaiveSystem"]


@dataclass(frozen=True)
class SystemConfig:
    """Shared configuration of the end-to-end simulations."""

    space: Box
    grid_shape: tuple[int, int] = (20, 20)
    buffer_bytes: int = 64 * 1024
    query_frac: float = 0.05
    link: LinkConfig = LinkConfig()
    io_time_per_node_s: float = 0.005

    def __post_init__(self) -> None:
        if self.space.ndim != 2:
            raise ConfigurationError("system space must be 2-D")
        if not 0.0 < self.query_frac <= 1.0:
            raise ConfigurationError(
                f"query_frac must be in (0, 1], got {self.query_frac}"
            )
        if self.buffer_bytes <= 0:
            raise ConfigurationError("buffer must be positive")
        if self.io_time_per_node_s < 0:
            raise ConfigurationError("io time must be non-negative")

    def query_box(self, position: np.ndarray) -> Box:
        extents = self.query_frac * self.space.extents
        return Box.from_center(position, extents)


@dataclass
class SystemRunResult:
    """Aggregates of one tour through one system."""

    ticks: int = 0
    contacts: int = 0
    total_response_s: float = 0.0
    max_response_s: float = 0.0
    demand_bytes: int = 0
    prefetch_bytes: int = 0
    io_node_reads: int = 0
    responses: list[float] = field(default_factory=list)

    @property
    def avg_response_s(self) -> float:
        return self.total_response_s / self.ticks if self.ticks else 0.0

    def steady_avg_response_s(self, warmup_ticks: int = 10) -> float:
        """Average response time excluding the cold-start ticks.

        Both systems pay a one-off initial fetch when the tour starts;
        on short scaled-down tours that cold start can dominate the
        plain average, so the steady-state figure drops the first
        ``warmup_ticks`` ticks.
        """
        tail = self.responses[warmup_ticks:]
        return sum(tail) / len(tail) if tail else 0.0

    @property
    def total_bytes(self) -> int:
        return self.demand_bytes + self.prefetch_bytes

    def note(self, response_s: float, contacted: bool) -> None:
        self.ticks += 1
        self.total_response_s += response_s
        self.max_response_s = max(self.max_response_s, response_s)
        self.responses.append(response_s)
        if contacted:
            self.contacts += 1


class MotionAwareSystem:
    """The paper's full stack over a motion-aware database/server."""

    def __init__(
        self,
        server: Server,
        config: SystemConfig,
        *,
        client_id: int = 0,
        mapper: SpeedResolutionMapper | None = None,
    ) -> None:
        self._server = server
        self._config = config
        self._client_id = client_id
        self._mapper = mapper if mapper is not None else LinearMapper()
        self._grid = Grid(config.space, config.grid_shape)
        self._manager = MotionAwareBufferManager(
            self._grid,
            config.buffer_bytes,
            server.database.block_bytes_fn(self._grid),
        )
        self._sent_uids: frozenset[tuple[int, int, int]] = frozenset()

    @property
    def manager(self) -> MotionAwareBufferManager:
        return self._manager

    def run(self, tour: Trajectory) -> SystemRunResult:
        """Drive the whole tour; returns the aggregates."""
        result = SystemRunResult()
        cfg = self._config
        for i in range(len(tour)):
            position = tour.positions[i]
            speed = tour.nominal_speed
            w_min = float(self._mapper(speed))
            query = cfg.query_box(position)
            tick = self._manager.tick(position, speed, query, w_min)
            response_s = 0.0
            if tick.contacted_server:
                demand_payload = 0
                demand_io = 0
                for cell in tick.demand_cells:
                    payload, io, new_uids = self._server.block_payload_bytes(
                        self._client_id,
                        self._grid.cell_box(cell),
                        w_min,
                        self._sent_uids,
                    )
                    demand_payload += payload
                    demand_io += io
                    self._sent_uids = self._sent_uids | new_uids
                prefetch_payload = 0
                for cell in tick.prefetch_cells:
                    payload, io, new_uids = self._server.block_payload_bytes(
                        self._client_id,
                        self._grid.cell_box(cell),
                        w_min,
                        self._sent_uids,
                    )
                    prefetch_payload += payload
                    result.io_node_reads += io
                    self._sent_uids = self._sent_uids | new_uids
                response_s = (
                    cfg.link.round_trip_time(demand_payload, speed)
                    + demand_io * cfg.io_time_per_node_s
                )
                result.demand_bytes += demand_payload
                result.prefetch_bytes += prefetch_payload
                result.io_node_reads += demand_io
            result.note(response_s, tick.contacted_server)
        return result


class _LRUObjectCache:
    """Byte-bounded LRU cache of whole objects (naive client state)."""

    def __init__(self, capacity_bytes: int) -> None:
        self._capacity = capacity_bytes
        self._items: OrderedDict[int, int] = OrderedDict()  # id -> bytes
        self._bytes = 0

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._items

    def touch(self, object_id: int) -> None:
        self._items.move_to_end(object_id)

    def add(self, object_id: int, size: int) -> None:
        if object_id in self._items:
            self.touch(object_id)
            return
        while self._bytes + size > self._capacity and self._items:
            _, evicted = self._items.popitem(last=False)
            self._bytes -= evicted
        if self._bytes + size <= self._capacity:
            self._items[object_id] = size
            self._bytes += size


class NaiveSystem:
    """Highest-resolution, object-granular retrieval with LRU caching."""

    def __init__(self, server: Server, config: SystemConfig) -> None:
        self._server = server
        self._config = config
        db = server.database
        items = [
            (obj.footprint, obj.object_id) for obj in db.objects
        ]
        self._index = bulk_load(items, tree_class=RStarTree)
        self._sizes = {obj.object_id: obj.total_bytes for obj in db.objects}
        # I/O to read one object's full data off disk, in pages.
        page = 4096
        self._object_io = {
            oid: max(size // page, 1) for oid, size in self._sizes.items()
        }
        self._cache = _LRUObjectCache(config.buffer_bytes)

    def run(self, tour: Trajectory) -> SystemRunResult:
        """Drive the whole tour; returns the aggregates."""
        result = SystemRunResult()
        cfg = self._config
        for i in range(len(tour)):
            position = tour.positions[i]
            speed = tour.nominal_speed
            query = cfg.query_box(position)
            self._index.stats.push()
            object_ids = self._index.search(query)
            index_io = self._index.stats.pop_delta().node_reads
            payload = 0
            data_io = 0
            missing = [oid for oid in object_ids if oid not in self._cache]
            for oid in object_ids:
                if oid in self._cache:
                    self._cache.touch(oid)
            for oid in missing:
                payload += self._sizes[oid]
                data_io += self._object_io[oid]
                self._cache.add(oid, self._sizes[oid])
            contacted = bool(missing)
            response_s = 0.0
            if contacted:
                response_s = (
                    cfg.link.round_trip_time(payload, speed)
                    + (index_io + data_io) * cfg.io_time_per_node_s
                )
                result.demand_bytes += payload
                result.io_node_reads += index_io + data_io
            result.note(response_s, contacted)
        return result
