"""End-to-end systems: the paper's motion-aware stack vs the naive stack.

These drivers reproduce the overall-performance comparison of
Section VII-E (Figures 14/15):

* :class:`MotionAwareSystem` -- multi-resolution retrieval (speed ->
  ``w_min``), motion-aware buffer manager (Kalman prediction +
  direction-allocated prefetching + probability eviction), wavelet
  support-region index, and incremental delta requests (already-sent
  records are never re-shipped).
* :class:`NaiveSystem` -- always fetches objects at the highest
  resolution, indexes whole objects with an R*-tree (no multiresolution
  entries), and caches whole objects with plain LRU.

Both run over the same database, link model and tours.  Per tick the
*query response time* is the time until the current frame's data is
available: zero when everything is cached, otherwise the resilient
exchange of the demanded payload (retransmissions, bounded retries and
backoff included) plus server I/O time.  Prefetch traffic is shipped in
the background: it counts toward total bytes but not response time.

Fault tolerance: demand traffic flows through a real
:class:`~repro.net.link.WirelessLink` carrying the configured
:class:`~repro.net.faults.FaultSchedule`.  A request that exhausts its
bounded retries is *stale-served*: the tick renders from whatever the
buffer holds, the fetched blocks are rolled back (the data never
arrived), nothing is marked as shipped, and the motion-aware client
degrades -- it raises its effective ``w_min`` for a window and recovers
monotonically (:mod:`repro.core.resilience`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.buffering.manager import MotionAwareBufferManager
from repro.core.resilience import (
    DegradationController,
    ResiliencePolicy,
    ResilientExchanger,
)
from repro.core.resolution import LinearMapper, SpeedResolutionMapper
from repro.errors import ConfigurationError
from repro.geometry.box import Box
from repro.geometry.grid import Grid
from repro.index.bulk import bulk_load
from repro.index.rstar import RStarTree
from repro.motion.trajectory import Trajectory
from repro.net.faults import FaultInjector, FaultSchedule
from repro.net.link import LinkConfig, WirelessLink
from repro.net.simclock import SimClock
from repro.server.server import BlockQuote, Server
from repro.store.uids import EMPTY_UIDS, UidSet

__all__ = ["SystemConfig", "SystemRunResult", "MotionAwareSystem", "NaiveSystem"]


@dataclass(frozen=True)
class SystemConfig:
    """Shared configuration of the end-to-end simulations.

    ``faults`` injects deterministic link misbehaviour; ``resilience``
    bounds what the client does about it; ``seed`` feeds every random
    stream (link loss, fault sampling, backoff jitter) so a run is a
    pure function of its configuration and tour.
    """

    space: Box
    grid_shape: tuple[int, int] = (20, 20)
    buffer_bytes: int = 64 * 1024
    query_frac: float = 0.05
    link: LinkConfig = LinkConfig()
    io_time_per_node_s: float = 0.005
    faults: FaultSchedule | None = None
    resilience: ResiliencePolicy = ResiliencePolicy()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.space.ndim != 2:
            raise ConfigurationError("system space must be 2-D")
        if not 0.0 < self.query_frac <= 1.0:
            raise ConfigurationError(
                f"query_frac must be in (0, 1], got {self.query_frac}"
            )
        if self.buffer_bytes <= 0:
            raise ConfigurationError("buffer must be positive")
        if self.io_time_per_node_s < 0:
            raise ConfigurationError("io time must be non-negative")

    def query_box(self, position: np.ndarray) -> Box:
        extents = self.query_frac * self.space.extents
        return Box.from_center(position, extents)

    def build_link(self, client_id: int) -> WirelessLink:
        """A fault-injected link with streams derived from ``seed``."""
        injector = None
        if self.faults is not None:
            injector = FaultInjector(
                self.faults,
                rng=np.random.default_rng([self.seed, client_id, 1]),
            )
        return WirelessLink(
            self.link,
            rng=np.random.default_rng([self.seed, client_id, 2]),
            faults=injector,
        )

    def build_exchanger(self, link: WirelessLink, client_id: int) -> ResilientExchanger:
        """The bounded-retry wrapper with its own jitter stream."""
        return ResilientExchanger(
            link,
            self.resilience,
            rng=np.random.default_rng([self.seed, client_id, 3]),
        )


@dataclass
class SystemRunResult:
    """Aggregates of one tour through one system.

    Fault-path counters: ``timeouts`` (requests abandoned past the
    timeout budget), ``retries`` (exchange-level retries issued),
    ``degraded_ticks`` (ticks spent inside a degradation window),
    ``stale_served_ticks`` (ticks rendered from the buffer because the
    demand transfer failed), ``records_shipped`` (coefficient records
    delivered over the wire -- equals the number of *distinct* records
    when the no-reship invariant holds).  ``w_min_trace`` records the
    effective per-tick resolution threshold and ``failure_ticks`` the
    tick indices of failed demand transfers.
    """

    ticks: int = 0
    contacts: int = 0
    total_response_s: float = 0.0
    max_response_s: float = 0.0
    demand_bytes: int = 0
    prefetch_bytes: int = 0
    io_node_reads: int = 0
    responses: list[float] = field(default_factory=list)
    timeouts: int = 0
    retries: int = 0
    degraded_ticks: int = 0
    stale_served_ticks: int = 0
    records_shipped: int = 0
    w_min_trace: list[float] = field(default_factory=list)
    failure_ticks: list[int] = field(default_factory=list)

    @property
    def avg_response_s(self) -> float:
        return self.total_response_s / self.ticks if self.ticks else 0.0

    def steady_avg_response_s(self, warmup_ticks: int = 10) -> float:
        """Average response time excluding the cold-start ticks.

        Both systems pay a one-off initial fetch when the tour starts;
        on short scaled-down tours that cold start can dominate the
        plain average, so the steady-state figure drops the first
        ``warmup_ticks`` ticks.
        """
        tail = self.responses[warmup_ticks:]
        return sum(tail) / len(tail) if tail else 0.0

    @property
    def total_bytes(self) -> int:
        return self.demand_bytes + self.prefetch_bytes

    def note(self, response_s: float, contacted: bool) -> None:
        self.ticks += 1
        self.total_response_s += response_s
        self.max_response_s = max(self.max_response_s, response_s)
        self.responses.append(response_s)
        if contacted:
            self.contacts += 1


class MotionAwareSystem:
    """The paper's full stack over a motion-aware database/server."""

    def __init__(
        self,
        server: Server,
        config: SystemConfig,
        *,
        client_id: int = 0,
        mapper: SpeedResolutionMapper | None = None,
    ) -> None:
        self._server = server
        self._config = config
        self._client_id = client_id
        self._mapper = mapper if mapper is not None else LinearMapper()
        self._grid = Grid(config.space, config.grid_shape)
        self._manager = MotionAwareBufferManager(
            self._grid,
            config.buffer_bytes,
            server.database.block_bytes_fn(self._grid),
            block_rows=server.database.block_rows_fn(self._grid),
        )
        self._sent_uids: UidSet = EMPTY_UIDS
        self._link = config.build_link(client_id)
        self._exchanger = config.build_exchanger(self._link, client_id)
        self._degradation = DegradationController(config.resilience)

    @property
    def manager(self) -> MotionAwareBufferManager:
        return self._manager

    @property
    def link(self) -> WirelessLink:
        return self._link

    @property
    def sent_uids(self) -> UidSet:
        """Every record uid the client has successfully received."""
        return self._sent_uids

    def _quote_cells(
        self,
        cells: tuple[tuple[int, ...], ...],
        w_min: float,
        exclude: UidSet,
        assume_bases: frozenset[int],
    ) -> tuple[list[BlockQuote], UidSet, frozenset[int]]:
        """Price a set of blocks without committing server state."""
        quotes: list[BlockQuote] = []
        for cell in cells:
            quote = self._server.quote_block(
                self._client_id,
                self._grid.cell_box(cell),
                w_min,
                exclude,
                assume_shipped_bases=assume_bases,
            )
            quotes.append(quote)
            exclude = exclude | quote.new_uids
            assume_bases = assume_bases | quote.new_base_ids
        return quotes, exclude, assume_bases

    def run(self, tour: Trajectory) -> SystemRunResult:
        """Drive the whole tour; returns the aggregates."""
        result = SystemRunResult()
        cfg = self._config
        clock = SimClock(start=float(tour.times[0]))
        for i in range(len(tour)):
            if float(tour.times[i]) > clock.now:
                clock.advance_to(float(tour.times[i]))
            now = clock.now
            position = tour.positions[i]
            speed = tour.nominal_speed
            base_w_min = float(self._mapper(speed))
            w_min = self._degradation.effective_w_min(now, base_w_min)
            if self._degradation.is_degraded(now):
                result.degraded_ticks += 1
            result.w_min_trace.append(w_min)
            query = cfg.query_box(position)
            tick = self._manager.tick(position, speed, query, w_min)
            response_s = 0.0
            if tick.contacted_server:
                demand_quotes, exclude, bases = self._quote_cells(
                    tick.demand_cells, w_min, self._sent_uids, frozenset()
                )
                demand_payload = sum(q.payload_bytes for q in demand_quotes)
                demand_io = sum(q.io_node_reads for q in demand_quotes)
                outcome = self._exchanger.request(
                    demand_payload, speed=speed, now=now
                )
                result.retries += outcome.retries
                if outcome.ok:
                    prefetch_quotes, exclude, bases = self._quote_cells(
                        tick.prefetch_cells, w_min, exclude, bases
                    )
                    for quote in demand_quotes + prefetch_quotes:
                        self._server.commit_quote(quote)
                        result.records_shipped += len(quote.new_uids)
                    self._sent_uids = exclude
                    prefetch_payload = sum(
                        q.payload_bytes for q in prefetch_quotes
                    )
                    prefetch_io = sum(q.io_node_reads for q in prefetch_quotes)
                    response_s = (
                        outcome.elapsed_s + demand_io * cfg.io_time_per_node_s
                    )
                    result.demand_bytes += demand_payload
                    result.prefetch_bytes += prefetch_payload
                    result.io_node_reads += demand_io + prefetch_io
                else:
                    # Stale-serve: render from what the buffer still
                    # holds, drop the phantom blocks, degrade.
                    result.stale_served_ticks += 1
                    result.failure_ticks.append(i)
                    if outcome.timed_out:
                        result.timeouts += 1
                    self._manager.rollback(
                        tick.demand_cells + tick.prefetch_cells
                    )
                    response_s = (
                        outcome.elapsed_s + demand_io * cfg.io_time_per_node_s
                    )
                    result.io_node_reads += demand_io
                    self._degradation.note_failure(now + outcome.elapsed_s)
            clock.advance(response_s)
            result.note(response_s, tick.contacted_server)
        return result


class _LRUObjectCache:
    """Byte-bounded LRU cache of whole objects (naive client state)."""

    def __init__(self, capacity_bytes: int) -> None:
        self._capacity = capacity_bytes
        self._items: OrderedDict[int, int] = OrderedDict()  # id -> bytes
        self._bytes = 0

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._items

    def touch(self, object_id: int) -> None:
        self._items.move_to_end(object_id)

    def add(self, object_id: int, size: int) -> None:
        if object_id in self._items:
            self.touch(object_id)
            return
        while self._bytes + size > self._capacity and self._items:
            _, evicted = self._items.popitem(last=False)
            self._bytes -= evicted
        if self._bytes + size <= self._capacity:
            self._items[object_id] = size
            self._bytes += size


class NaiveSystem:
    """Highest-resolution, object-granular retrieval with LRU caching.

    The naive client shares the resilient transport (bounded retries,
    timeouts) but has no resolution to shed: a failed transfer simply
    leaves its objects uncached, to be refetched in full next tick --
    which is exactly why it suffers more under a degraded link.
    """

    def __init__(
        self, server: Server, config: SystemConfig, *, client_id: int = 0
    ) -> None:
        self._server = server
        self._config = config
        db = server.database
        items = [
            (obj.footprint, obj.object_id) for obj in db.objects
        ]
        self._index = bulk_load(items, tree_class=RStarTree)
        self._sizes = {obj.object_id: obj.total_bytes for obj in db.objects}
        # I/O to read one object's full data off disk, in pages.
        page = 4096
        self._object_io = {
            oid: max(size // page, 1) for oid, size in self._sizes.items()
        }
        self._cache = _LRUObjectCache(config.buffer_bytes)
        self._link = config.build_link(client_id)
        self._exchanger = config.build_exchanger(self._link, client_id)

    @property
    def link(self) -> WirelessLink:
        return self._link

    def run(self, tour: Trajectory) -> SystemRunResult:
        """Drive the whole tour; returns the aggregates."""
        result = SystemRunResult()
        cfg = self._config
        clock = SimClock(start=float(tour.times[0]))
        for i in range(len(tour)):
            if float(tour.times[i]) > clock.now:
                clock.advance_to(float(tour.times[i]))
            now = clock.now
            position = tour.positions[i]
            speed = tour.nominal_speed
            result.w_min_trace.append(0.0)
            query = cfg.query_box(position)
            self._index.stats.push()
            object_ids = self._index.search(query)
            index_io = self._index.stats.pop_delta().node_reads
            payload = 0
            data_io = 0
            missing = [oid for oid in object_ids if oid not in self._cache]
            for oid in object_ids:
                if oid in self._cache:
                    self._cache.touch(oid)
            for oid in missing:
                payload += self._sizes[oid]
                data_io += self._object_io[oid]
            contacted = bool(missing)
            response_s = 0.0
            if contacted:
                outcome = self._exchanger.request(payload, speed=speed, now=now)
                result.retries += outcome.retries
                response_s = (
                    outcome.elapsed_s
                    + (index_io + data_io) * cfg.io_time_per_node_s
                )
                result.io_node_reads += index_io + data_io
                if outcome.ok:
                    for oid in missing:
                        self._cache.add(oid, self._sizes[oid])
                    result.demand_bytes += payload
                    result.records_shipped += len(missing)
                else:
                    result.stale_served_ticks += 1
                    result.failure_ticks.append(i)
                    if outcome.timed_out:
                        result.timeouts += 1
            clock.advance(response_s)
            result.note(response_s, contacted)
        return result
