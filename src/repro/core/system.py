"""End-to-end systems: the paper's motion-aware stack vs the naive stack.

These drivers reproduce the overall-performance comparison of
Section VII-E (Figures 14/15):

* :class:`MotionAwareSystem` -- multi-resolution retrieval (speed ->
  ``w_min``), motion-aware buffer manager (Kalman prediction +
  direction-allocated prefetching + probability eviction), wavelet
  support-region index, and incremental delta requests (already-sent
  records are never re-shipped).
* :class:`NaiveSystem` -- always fetches objects at the highest
  resolution, indexes whole objects with an R*-tree (no multiresolution
  entries), and caches whole objects with plain LRU.

Both are thin configurations of the unified
:class:`~repro.sim.session.ClientSession` engine: the per-tick skeleton
(resolution -> plan -> transport -> commit/abort -> account) lives in
:mod:`repro.sim.session`, the behaviours that differ live in the
:mod:`repro.core.sessions` policies, and :meth:`run` drives the session
through the tour on the discrete-event kernel.  The pre-kernel
lock-step loops are preserved verbatim as :meth:`run_legacy` so the
scenario suite can assert the refactor is bit-identical.

Both run over the same database, link model and tours.  Per tick the
*query response time* is the time until the current frame's data is
available: zero when everything is cached, otherwise the resilient
exchange of the demanded payload (retransmissions, bounded retries and
backoff included) plus server I/O time.  Prefetch traffic is shipped in
the background: it counts toward total bytes but not response time.

Fault tolerance: demand traffic flows through a real
:class:`~repro.net.link.WirelessLink` carrying the configured
:class:`~repro.net.faults.FaultSchedule`.  A request that exhausts its
bounded retries is *stale-served*: the tick renders from whatever the
buffer holds, the fetched blocks are rolled back (the data never
arrived), nothing is marked as shipped, and the motion-aware client
degrades -- it raises its effective ``w_min`` for a window and recovers
monotonically (:mod:`repro.core.resilience`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.buffering.manager import MotionAwareBufferManager
from repro.core.resilience import ResiliencePolicy, ResilientExchanger
from repro.core.resolution import SpeedResolutionMapper
from repro.core.sessions import MotionAwareSessionPolicy, NaiveSessionPolicy
from repro.errors import ConfigurationError
from repro.geometry.box import Box
from repro.index.rtree import RTree
from repro.motion.trajectory import Trajectory
from repro.net.faults import FaultInjector, FaultSchedule
from repro.net.link import LinkConfig, WirelessLink
from repro.net.simclock import SimClock
from repro.server.server import Server
from repro.sim.resources import FifoResource
from repro.sim.session import ClientSession, SessionResult, run_tour
from repro.sim.streams import (
    BACKOFF_STREAM,
    LINK_FAULTS_STREAM,
    LINK_LOSS_STREAM,
    derive_rng,
)
from repro.store.uids import UidSet

__all__ = ["SystemConfig", "SystemRunResult", "MotionAwareSystem", "NaiveSystem"]

#: One tour's aggregates.  The dataclass itself now lives with the
#: session engine (:class:`repro.sim.session.SessionResult`); the old
#: name remains the public spelling at this layer.
SystemRunResult = SessionResult


@dataclass(frozen=True)
class SystemConfig:
    """Shared configuration of the end-to-end simulations.

    ``faults`` injects deterministic link misbehaviour; ``resilience``
    bounds what the client does about it; ``seed`` feeds every random
    stream (link loss, fault sampling, backoff jitter) so a run is a
    pure function of its configuration and tour.
    """

    space: Box
    grid_shape: tuple[int, int] = (20, 20)
    buffer_bytes: int = 64 * 1024
    query_frac: float = 0.05
    link: LinkConfig = LinkConfig()
    io_time_per_node_s: float = 0.005
    faults: FaultSchedule | None = None
    resilience: ResiliencePolicy = ResiliencePolicy()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.space.ndim != 2:
            raise ConfigurationError("system space must be 2-D")
        if not 0.0 < self.query_frac <= 1.0:
            raise ConfigurationError(
                f"query_frac must be in (0, 1], got {self.query_frac}"
            )
        if self.buffer_bytes <= 0:
            raise ConfigurationError("buffer must be positive")
        if self.io_time_per_node_s < 0:
            raise ConfigurationError("io time must be non-negative")

    def query_box(self, position: np.ndarray) -> Box:
        extents = self.query_frac * self.space.extents
        return Box.from_center(position, extents)

    def build_link(self, client_id: int) -> WirelessLink:
        """A fault-injected link with streams derived from ``seed``."""
        injector = None
        if self.faults is not None:
            injector = FaultInjector(
                self.faults,
                rng=derive_rng(self.seed, client_id, LINK_FAULTS_STREAM),
            )
        return WirelessLink(
            self.link,
            rng=derive_rng(self.seed, client_id, LINK_LOSS_STREAM),
            faults=injector,
        )

    def build_exchanger(self, link: WirelessLink, client_id: int) -> ResilientExchanger:
        """The bounded-retry wrapper with its own jitter stream."""
        return ResilientExchanger(
            link,
            self.resilience,
            rng=derive_rng(self.seed, client_id, BACKOFF_STREAM),
        )


class MotionAwareSystem:
    """The paper's full stack over a motion-aware database/server."""

    def __init__(
        self,
        server: Server,
        config: SystemConfig,
        *,
        client_id: int = 0,
        mapper: SpeedResolutionMapper | None = None,
    ) -> None:
        self._server = server
        self._config = config
        self._client_id = client_id
        self._policy = MotionAwareSessionPolicy(
            server, config, client_id=client_id, mapper=mapper
        )
        self._link = config.build_link(client_id)
        self._exchanger = config.build_exchanger(self._link, client_id)

    @property
    def policy(self) -> MotionAwareSessionPolicy:
        return self._policy

    @property
    def manager(self) -> MotionAwareBufferManager:
        return self._policy.manager

    @property
    def link(self) -> WirelessLink:
        return self._link

    @property
    def sent_uids(self) -> UidSet:
        """Every record uid the client has successfully received."""
        return self._policy.sent_uids

    def session(
        self,
        *,
        uplink: FifoResource | None = None,
        uplink_bps: float = 0.0,
        result: SessionResult | None = None,
    ) -> ClientSession:
        """This system's client as a :class:`ClientSession`."""
        return ClientSession(
            self._policy,
            self._exchanger,
            io_time_per_node_s=self._config.io_time_per_node_s,
            uplink=uplink,
            uplink_bps=uplink_bps,
            result=result,
        )

    def run(self, tour: Trajectory) -> SystemRunResult:
        """Drive the whole tour; returns the aggregates."""
        return run_tour(self.session(), tour)

    def run_legacy(self, tour: Trajectory) -> SystemRunResult:
        """The pre-kernel lock-step loop, preserved verbatim.

        Kept only as the reference implementation for the bit-identity
        parity suite (``tests/scenarios/test_parity.py``); new callers
        use :meth:`run`.
        """
        result = SystemRunResult()
        cfg = self._config
        policy = self._policy
        clock = SimClock(start=float(tour.times[0]))
        for i in range(len(tour)):
            if float(tour.times[i]) > clock.now:
                clock.advance_to(float(tour.times[i]))
            now = clock.now
            position = tour.positions[i]
            speed = tour.nominal_speed
            base_w_min = float(policy.mapper(speed))
            w_min = policy.degradation.effective_w_min(now, base_w_min)
            if policy.degradation.is_degraded(now):
                result.degraded_ticks += 1
            result.w_min_trace.append(w_min)
            query = cfg.query_box(position)
            tick = policy.manager.tick(position, speed, query, w_min)
            response_s = 0.0
            if tick.contacted_server:
                demand_quotes, exclude, bases = policy.quote_cells(
                    tick.demand_cells, w_min, policy.sent_uids, frozenset()
                )
                demand_payload = sum(q.payload_bytes for q in demand_quotes)
                demand_io = sum(q.io_node_reads for q in demand_quotes)
                outcome = self._exchanger.request(
                    demand_payload, speed=speed, now=now
                )
                result.retries += outcome.retries
                if outcome.ok:
                    prefetch_quotes, exclude, bases = policy.quote_cells(
                        tick.prefetch_cells, w_min, exclude, bases
                    )
                    for quote in demand_quotes + prefetch_quotes:
                        self._server.commit_quote(quote)
                        result.records_shipped += len(quote.new_uids)
                    policy.sent_uids = exclude
                    prefetch_payload = sum(
                        q.payload_bytes for q in prefetch_quotes
                    )
                    prefetch_io = sum(q.io_node_reads for q in prefetch_quotes)
                    response_s = (
                        outcome.elapsed_s + demand_io * cfg.io_time_per_node_s
                    )
                    result.demand_bytes += demand_payload
                    result.prefetch_bytes += prefetch_payload
                    result.io_node_reads += demand_io + prefetch_io
                else:
                    # Stale-serve: render from what the buffer still
                    # holds, drop the phantom blocks, degrade.
                    result.stale_served_ticks += 1
                    result.failure_ticks.append(i)
                    if outcome.timed_out:
                        result.timeouts += 1
                    policy.manager.rollback(
                        tick.demand_cells + tick.prefetch_cells
                    )
                    response_s = (
                        outcome.elapsed_s + demand_io * cfg.io_time_per_node_s
                    )
                    result.io_node_reads += demand_io
                    policy.degradation.note_failure(now + outcome.elapsed_s)
            clock.advance(response_s)
            result.note(response_s, tick.contacted_server)
        return result


class NaiveSystem:
    """Highest-resolution, object-granular retrieval with LRU caching.

    The naive client shares the resilient transport (bounded retries,
    timeouts) but has no resolution to shed: a failed transfer simply
    leaves its objects uncached, to be refetched in full next tick --
    which is exactly why it suffers more under a degraded link.
    """

    def __init__(
        self,
        server: Server,
        config: SystemConfig,
        *,
        client_id: int = 0,
        index: RTree | None = None,
    ) -> None:
        self._server = server
        self._config = config
        self._policy = NaiveSessionPolicy(server, config, index=index)
        self._link = config.build_link(client_id)
        self._exchanger = config.build_exchanger(self._link, client_id)

    @property
    def policy(self) -> NaiveSessionPolicy:
        return self._policy

    @property
    def link(self) -> WirelessLink:
        return self._link

    def session(
        self,
        *,
        uplink: FifoResource | None = None,
        uplink_bps: float = 0.0,
        result: SessionResult | None = None,
    ) -> ClientSession:
        """This system's client as a :class:`ClientSession`."""
        return ClientSession(
            self._policy,
            self._exchanger,
            io_time_per_node_s=self._config.io_time_per_node_s,
            uplink=uplink,
            uplink_bps=uplink_bps,
            result=result,
        )

    def run(self, tour: Trajectory) -> SystemRunResult:
        """Drive the whole tour; returns the aggregates."""
        return run_tour(self.session(), tour)

    def run_legacy(self, tour: Trajectory) -> SystemRunResult:
        """The pre-kernel lock-step loop, preserved verbatim.

        Kept only as the reference implementation for the bit-identity
        parity suite (``tests/scenarios/test_parity.py``); new callers
        use :meth:`run`.
        """
        result = SystemRunResult()
        cfg = self._config
        policy = self._policy
        clock = SimClock(start=float(tour.times[0]))
        for i in range(len(tour)):
            if float(tour.times[i]) > clock.now:
                clock.advance_to(float(tour.times[i]))
            now = clock.now
            position = tour.positions[i]
            speed = tour.nominal_speed
            result.w_min_trace.append(0.0)
            query = cfg.query_box(position)
            policy.index.stats.push()
            object_ids = policy.index.search(query)
            index_io = policy.index.stats.pop_delta().node_reads
            payload = 0
            data_io = 0
            missing = [oid for oid in object_ids if oid not in policy.cache]
            for oid in object_ids:
                if oid in policy.cache:
                    policy.cache.touch(oid)
            for oid in missing:
                payload += policy.object_sizes[oid]
                data_io += policy.object_io[oid]
            contacted = bool(missing)
            response_s = 0.0
            if contacted:
                outcome = self._exchanger.request(payload, speed=speed, now=now)
                result.retries += outcome.retries
                response_s = (
                    outcome.elapsed_s
                    + (index_io + data_io) * cfg.io_time_per_node_s
                )
                result.io_node_reads += index_io + data_io
                if outcome.ok:
                    for oid in missing:
                        policy.cache.add(oid, policy.object_sizes[oid])
                    result.demand_bytes += payload
                    result.records_shipped += len(missing)
                else:
                    result.stale_served_ticks += 1
                    result.failure_ticks.append(i)
                    if outcome.timed_out:
                        result.timeouts += 1
            clock.advance(response_s)
            result.note(response_s, contacted)
        return result
