"""Speed-to-resolution mapping.

The client maps its current speed to the resolution it needs
(Section IV): resolution is expressed directly as the lower coefficient
bound ``w_min`` -- at speed ``s`` the client retrieves coefficients with
values in ``[w_min(s), 1.0]``.  ``w_min = 0`` is full detail,
``w_min = 1`` the coarsest version.

The paper's experiments use the identity mapping (speed 0.5 retrieves
``[0.5, 1.0]``); the function is explicitly "application dependent" and
tunable by the vendor, so alternatives are provided.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Protocol

from repro.errors import ConfigurationError

__all__ = [
    "SpeedResolutionMapper",
    "LinearMapper",
    "PowerMapper",
    "SteppedMapper",
    "clamp_speed",
]


def clamp_speed(speed: float) -> float:
    """Clip a normalised speed into ``[0, 1]``."""
    return min(max(speed, 0.0), 1.0)


class SpeedResolutionMapper(Protocol):
    """Maps a normalised speed to the ``w_min`` retrieval threshold."""

    def __call__(self, speed: float) -> float:
        ...


class LinearMapper:
    """``w_min = speed`` -- the paper's experimental mapping."""

    def __call__(self, speed: float) -> float:
        return clamp_speed(speed)

    def __repr__(self) -> str:
        return "LinearMapper()"


class PowerMapper:
    """``w_min = speed ** gamma``.

    ``gamma > 1`` keeps more detail at moderate speeds (quality-first),
    ``gamma < 1`` sheds detail earlier (bandwidth-first).
    """

    def __init__(self, gamma: float) -> None:
        if gamma <= 0:
            raise ConfigurationError(f"gamma must be positive, got {gamma}")
        self.gamma = gamma

    def __call__(self, speed: float) -> float:
        return clamp_speed(speed) ** self.gamma

    def __repr__(self) -> str:
        return f"PowerMapper(gamma={self.gamma})"


class SteppedMapper:
    """Quantised mapping: a small set of discrete quality levels.

    Real clients switch between a handful of level-of-detail settings
    rather than a continuum; this maps speed to the smallest threshold
    in ``levels`` that is >= the linear value.
    """

    def __init__(self, levels: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0)) -> None:
        values = sorted(levels)
        if not values:
            raise ConfigurationError("need at least one level")
        if values[0] < 0.0 or values[-1] > 1.0:
            raise ConfigurationError(f"levels must lie in [0, 1], got {values}")
        self.levels = values

    def __call__(self, speed: float) -> float:
        s = clamp_speed(speed)
        for level in self.levels:
            if level >= s:
                return level
        return self.levels[-1]

    def __repr__(self) -> str:
        return f"SteppedMapper(levels={self.levels})"
