"""Client-side resilience: bounded retries, timeouts, graceful degradation.

The link layer (:mod:`repro.net.link`) bounds a single exchange at
``max_attempts`` retransmissions; this module bounds the *request*: a
:class:`ResilientExchanger` retries a failed exchange a bounded number
of times with exponential backoff plus seeded jitter, gives up early
once a per-request timeout budget is spent, and always reports how much
simulated time the request consumed -- success or not.

Failure feeds a :class:`DegradationController`: for a degradation
window after the last failure the client raises its effective
resolution threshold ``w_min`` toward a coarse floor and lets it ramp
back down linearly, so a client behind a flaky link keeps rendering
from buffered coarse data instead of blocking on detail it cannot get.
Between failures the effective ``w_min`` is non-increasing in time
(monotone resolution recovery), which the scenario harness asserts.

Everything is deterministic: jitter comes from an injected seeded
generator and all times are simulated seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, LinkExchangeError
from repro.net.link import LinkConfig, WirelessLink

__all__ = [
    "ResiliencePolicy",
    "ExchangeOutcome",
    "ResilientExchanger",
    "DegradationController",
]


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs of the client-side resilience behaviour.

    Attributes
    ----------
    max_retries:
        Exchange-level retries after a failed (attempt-capped) exchange.
    base_backoff_s, backoff_factor, max_backoff_s:
        Exponential backoff: retry ``i`` waits
        ``min(base * factor**i, max)`` seconds before re-issuing.
    jitter_frac:
        Uniform jitter of ``+/- jitter_frac * backoff`` drawn from the
        injected generator (decorrelates clients hitting one server).
    timeout_s:
        Per-request budget; once the accumulated link + backoff time
        exceeds it no further retry is issued.
    degraded_window_s:
        How long after the last failure the client stays degraded.
    degraded_w_min:
        The resolution floor right after a failure; the effective
        ``w_min`` ramps linearly from it back to the speed-mapped value
        over the degradation window.
    """

    max_retries: int = 3
    base_backoff_s: float = 0.2
    backoff_factor: float = 2.0
    max_backoff_s: float = 5.0
    jitter_frac: float = 0.25
    timeout_s: float = 60.0
    degraded_window_s: float = 20.0
    degraded_w_min: float = 0.9

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ConfigurationError("backoff times must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ConfigurationError(
                f"jitter_frac must be in [0, 1], got {self.jitter_frac}"
            )
        if self.timeout_s <= 0:
            raise ConfigurationError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.degraded_window_s < 0:
            raise ConfigurationError("degraded_window_s must be non-negative")
        if not 0.0 <= self.degraded_w_min <= 1.0:
            raise ConfigurationError(
                f"degraded_w_min must be in [0, 1], got {self.degraded_w_min}"
            )

    def backoff_s(self, retry_index: int, rng: np.random.Generator) -> float:
        """Jittered wait before retry ``retry_index`` (0-based)."""
        if retry_index < 0:
            raise ConfigurationError(
                f"retry index must be non-negative, got {retry_index}"
            )
        base = min(
            self.base_backoff_s * self.backoff_factor**retry_index,
            self.max_backoff_s,
        )
        if self.jitter_frac == 0.0 or base == 0.0:
            return base
        jitter = base * self.jitter_frac
        return max(base + float(rng.uniform(-jitter, jitter)), 0.0)

    def max_backoff_total_s(self) -> float:
        """Upper bound on the summed backoff over all retries."""
        total = 0.0
        for i in range(self.max_retries):
            base = min(
                self.base_backoff_s * self.backoff_factor**i, self.max_backoff_s
            )
            total += base * (1.0 + self.jitter_frac)
        return total

    def worst_case_request_s(
        self,
        link: LinkConfig,
        payload_bytes: int,
        speed: float = 0.0,
        *,
        extra_latency_s: float = 0.0,
        bandwidth_factor: float = 1.0,
    ) -> float:
        """Hard upper bound on one request's simulated duration.

        Every exchange costs at most ``max_attempts`` worst-case round
        trips; at most ``max_retries + 1`` exchanges run, separated by
        bounded backoff.  This is the bound the scenario harness holds
        the end-to-end systems to.
        """
        worst_rtt = link.round_trip_time(
            payload_bytes,
            speed,
            extra_latency_s=extra_latency_s,
            bandwidth_factor=bandwidth_factor,
        )
        exchanges = self.max_retries + 1
        return exchanges * link.max_attempts * worst_rtt + self.max_backoff_total_s()


@dataclass(frozen=True)
class ExchangeOutcome:
    """What one resilient request cost and whether it delivered."""

    ok: bool
    elapsed_s: float
    retries: int
    timed_out: bool


class ResilientExchanger:
    """Bounded-retry wrapper around a :class:`WirelessLink`."""

    def __init__(
        self,
        link: WirelessLink,
        policy: ResiliencePolicy,
        *,
        rng: np.random.Generator,
    ) -> None:
        self._link = link
        self._policy = policy
        self._rng = rng

    @property
    def link(self) -> WirelessLink:
        return self._link

    @property
    def policy(self) -> ResiliencePolicy:
        return self._policy

    def request(
        self, payload_bytes: int, *, speed: float = 0.0, now: float = 0.0
    ) -> ExchangeOutcome:
        """Issue one request; never raises, never blocks unboundedly.

        Returns the delivered/failed outcome with the total simulated
        time spent (link attempts plus backoff waits).
        """
        policy = self._policy
        elapsed = 0.0
        retries = 0
        while True:
            try:
                elapsed += self._link.exchange(
                    payload_bytes, speed=speed, now=now + elapsed
                )
                return ExchangeOutcome(
                    ok=True, elapsed_s=elapsed, retries=retries, timed_out=False
                )
            except LinkExchangeError as exc:
                elapsed += exc.elapsed_s
                timed_out = elapsed >= policy.timeout_s
                if retries >= policy.max_retries or timed_out:
                    return ExchangeOutcome(
                        ok=False,
                        elapsed_s=elapsed,
                        retries=retries,
                        timed_out=timed_out,
                    )
                elapsed += policy.backoff_s(retries, self._rng)
                retries += 1


class DegradationController:
    """Tracks the degraded window and the effective resolution floor."""

    def __init__(self, policy: ResiliencePolicy) -> None:
        self._policy = policy
        self._degraded_until: float | None = None

    @property
    def degraded_until(self) -> float | None:
        """End of the current degraded window, if any."""
        return self._degraded_until

    def note_failure(self, now: float) -> None:
        """Record a failed request finishing at ``now``."""
        until = now + self._policy.degraded_window_s
        if self._degraded_until is None or until > self._degraded_until:
            self._degraded_until = until

    def is_degraded(self, now: float) -> bool:
        """True while the degradation window covers ``now``."""
        return self._degraded_until is not None and now < self._degraded_until

    def effective_w_min(self, now: float, base_w_min: float) -> float:
        """The resolution threshold to retrieve at ``now``.

        Outside a degraded window this is ``base_w_min``.  Inside, the
        floor starts at ``degraded_w_min`` and ramps linearly down to
        ``base_w_min`` as the window expires -- monotone recovery.
        """
        if not 0.0 <= base_w_min <= 1.0:
            raise ConfigurationError(
                f"base w_min must be in [0, 1], got {base_w_min}"
            )
        if not self.is_degraded(now) or self._degraded_until is None:
            return base_w_min
        floor = self._policy.degraded_w_min
        if floor <= base_w_min:
            return base_w_min
        window = self._policy.degraded_window_s
        if window <= 0:
            return base_w_min
        remaining = min(self._degraded_until - now, window)
        frac = remaining / window
        return base_w_min + (floor - base_w_min) * frac

    def reset(self) -> None:
        """Forget any active degradation."""
        self._degraded_until = None
