"""The paper's primary contribution: motion-aware continuous retrieval.

This package wires the substrates together:

* :mod:`repro.core.resolution` -- speed -> resolution mapping;
* :mod:`repro.core.retrieval` -- Algorithm 1 (incremental continuous
  window queries with region difference and duplicate filtering);
* :mod:`repro.core.system` -- the end-to-end motion-aware and naive
  systems compared in Section VII-E.
"""

from repro.core.resolution import (
    LinearMapper,
    PowerMapper,
    SpeedResolutionMapper,
    SteppedMapper,
    clamp_speed,
)
from repro.core.adaptive import AdaptiveQoSMapper
from repro.core.coverage import CoverageMap, CoveredRegion
from repro.core.fleet import (
    FleetConfig,
    FleetResult,
    simulate_fleet,
    simulate_system_fleet,
)
from repro.core.resilience import (
    DegradationController,
    ExchangeOutcome,
    ResiliencePolicy,
    ResilientExchanger,
)
from repro.core.retrieval import (
    ContinuousRetrievalClient,
    PreparedStep,
    RetrievalStep,
)
from repro.core.sessions import (
    IncrementalSessionPolicy,
    LRUObjectCache,
    MotionAwareSessionPolicy,
    NaiveSessionPolicy,
    build_naive_index,
)
from repro.core.system import (
    MotionAwareSystem,
    NaiveSystem,
    SystemConfig,
    SystemRunResult,
)
from repro.core.view import filter_records_in_view, view_savings, view_wedge

__all__ = [
    "LinearMapper",
    "PowerMapper",
    "SteppedMapper",
    "SpeedResolutionMapper",
    "clamp_speed",
    "ContinuousRetrievalClient",
    "RetrievalStep",
    "PreparedStep",
    "MotionAwareSessionPolicy",
    "NaiveSessionPolicy",
    "IncrementalSessionPolicy",
    "LRUObjectCache",
    "build_naive_index",
    "MotionAwareSystem",
    "NaiveSystem",
    "SystemConfig",
    "SystemRunResult",
    "view_wedge",
    "filter_records_in_view",
    "view_savings",
    "CoverageMap",
    "CoveredRegion",
    "AdaptiveQoSMapper",
    "FleetConfig",
    "FleetResult",
    "simulate_fleet",
    "simulate_system_fleet",
    "ResiliencePolicy",
    "ExchangeOutcome",
    "ResilientExchanger",
    "DegradationController",
]
