"""Adaptive speed-to-resolution mapping driven by QoS feedback.

The paper states the ``MapSpeedToResolution`` function "is application
dependent and using a set of quality of service parameters should be
adjusted by the vendor".  :class:`AdaptiveQoSMapper` is such a vendor
policy: it starts from the linear mapping and biases it up or down so
the observed per-frame response time tracks a target.

The bias is a multiplicative exponent adjustment with clamped,
exponentially smoothed feedback: response times above target coarsen
the mapping (shed detail), times below refine it, stationary clients
(speed 0) always receive full detail.
"""

from __future__ import annotations

from repro.core.resolution import clamp_speed
from repro.errors import ConfigurationError

__all__ = ["AdaptiveQoSMapper"]


class AdaptiveQoSMapper:
    """A feedback-tuned mapper: ``w_min = speed ** gamma`` with moving gamma.

    Parameters
    ----------
    target_response_s:
        Desired per-frame response time.
    gamma_bounds:
        Allowed range of the exponent; ``gamma < 1`` sheds detail
        aggressively, ``gamma > 1`` favours quality.
    adaptation_rate:
        Relative gamma step per observation (0 disables adaptation).

    Usage: call the mapper like any other (``mapper(speed)``) and feed
    observed frame times back via :meth:`observe_response`.
    """

    def __init__(
        self,
        target_response_s: float = 1.0,
        *,
        gamma_bounds: tuple[float, float] = (0.25, 4.0),
        adaptation_rate: float = 0.1,
    ) -> None:
        if target_response_s <= 0:
            raise ConfigurationError("target response time must be positive")
        low, high = gamma_bounds
        if not 0 < low <= 1.0 <= high:
            raise ConfigurationError(
                f"gamma bounds must straddle 1.0, got {gamma_bounds}"
            )
        if adaptation_rate < 0:
            raise ConfigurationError("adaptation rate must be non-negative")
        self.target_response_s = target_response_s
        self._low, self._high = low, high
        self._rate = adaptation_rate
        self._gamma = 1.0
        self._observations = 0

    @property
    def gamma(self) -> float:
        """Current exponent (1.0 = the paper's linear mapping)."""
        return self._gamma

    @property
    def observations(self) -> int:
        return self._observations

    def __call__(self, speed: float) -> float:
        return clamp_speed(speed) ** self._gamma

    def observe_response(self, response_s: float) -> None:
        """Feed back one observed frame response time."""
        if response_s < 0:
            raise ConfigurationError(
                f"response time must be non-negative, got {response_s}"
            )
        self._observations += 1
        if self._rate == 0.0:
            return
        if response_s > self.target_response_s:
            # Too slow: lower gamma so w_min rises sooner (less detail).
            self._gamma /= 1.0 + self._rate
        else:
            self._gamma *= 1.0 + self._rate
        self._gamma = min(max(self._gamma, self._low), self._high)

    def __repr__(self) -> str:
        return (
            f"AdaptiveQoSMapper(target={self.target_response_s}s, "
            f"gamma={self._gamma:.3f})"
        )
