"""Semantic coverage maps: remembering everything a client ever fetched.

Algorithm 1 diffs the current query frame only against the *previous*
one; a client that loops back over earlier ground re-requests regions it
already holds (the server's uid filter stops duplicate bytes, but the
requests and index I/O still happen).  A :class:`CoverageMap` fixes that
by maintaining the set of (region, resolution) pairs the client has
covered -- the "semantic caching" idea of the related work ([8] Zheng &
Lee), adapted to multi-resolution data.

Internally the map stores disjoint boxes per resolution threshold.
``missing(region, w_min)`` returns the sub-regions (with bands) still
needed to cover ``region`` at ``w_min``; ``add`` records new coverage,
merging where possible.  The structure is conservative: it may report a
covered region as missing after heavy fragmentation (bounded by the
``max_fragments`` compaction limit), but never the reverse, so
correctness of the retrieval is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProtocolError
from repro.geometry.box import Box

__all__ = ["CoveredRegion", "CoverageMap"]


@dataclass(frozen=True)
class CoveredRegion:
    """One covered box at one resolution threshold."""

    box: Box
    w_min: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.w_min <= 1.0:
            raise ProtocolError(f"w_min must be in [0, 1], got {self.w_min}")


@dataclass(frozen=True)
class MissingPiece:
    """A sub-region and band still to be fetched.

    ``w_max`` is 1.0 for fresh ground; for regions already covered at a
    coarser threshold it is that old threshold and ``half_open`` is
    True (only the incremental band is needed).
    """

    box: Box
    w_min: float
    w_max: float
    half_open: bool


class CoverageMap:
    """Disjoint-region coverage bookkeeping for one client.

    Parameters
    ----------
    max_fragments:
        Compaction threshold: when the map holds more pieces, the
        lowest-resolution fragments are dropped (conservatively -- the
        client will simply re-request them if needed).
    """

    def __init__(self, max_fragments: int = 256) -> None:
        if max_fragments < 1:
            raise ProtocolError(f"max_fragments must be >= 1, got {max_fragments}")
        self._regions: list[CoveredRegion] = []
        self._max_fragments = max_fragments

    def __len__(self) -> int:
        return len(self._regions)

    @property
    def regions(self) -> list[CoveredRegion]:
        return list(self._regions)

    def covered_volume(self, w_min: float) -> float:
        """Total volume covered at resolution ``w_min`` or better."""
        return sum(
            r.box.volume for r in self._regions if r.w_min <= w_min
        )

    def covers(self, box: Box, w_min: float) -> bool:
        """True when ``box`` is fully covered at ``w_min`` or better."""
        return not self.missing(box, w_min)

    def missing(self, box: Box, w_min: float) -> list[MissingPiece]:
        """Decompose what is still needed to cover ``box`` at ``w_min``.

        Walks the covered regions: parts of ``box`` inside a region with
        ``region.w_min <= w_min`` are satisfied; parts inside a coarser
        region need only the band ``[w_min, region.w_min)``; the rest
        needs the full band ``[w_min, 1.0]``.
        """
        if not 0.0 <= w_min <= 1.0:
            raise ProtocolError(f"w_min must be in [0, 1], got {w_min}")
        pending: list[tuple[Box, float]] = [(box, 1.0)]
        result: list[MissingPiece] = []
        for region in self._regions:
            next_pending: list[tuple[Box, float]] = []
            for piece, ceiling in pending:
                overlap = piece.intersection(region.box)
                if overlap is None:
                    next_pending.append((piece, ceiling))
                    continue
                # The part outside this region stays pending.
                for rest in piece.difference(region.box):
                    next_pending.append((rest, ceiling))
                if region.w_min > w_min:
                    # Covered, but too coarse: the overlap still needs
                    # the band below the existing threshold.
                    effective = min(ceiling, region.w_min)
                    if effective > w_min:
                        next_pending.append((overlap, effective))
                # else: fully satisfied; drop the overlap.
            pending = next_pending
        for piece, ceiling in pending:
            if ceiling >= 1.0:
                result.append(
                    MissingPiece(piece, w_min, 1.0, half_open=False)
                )
            else:
                result.append(
                    MissingPiece(piece, w_min, ceiling, half_open=True)
                )
        return result

    def add(self, box: Box, w_min: float) -> None:
        """Record that ``box`` is now covered at ``w_min``.

        Existing regions that become redundant (inside the new box with
        an equal-or-coarser threshold) are removed; partially covered
        coarser regions are clipped.
        """
        if not 0.0 <= w_min <= 1.0:
            raise ProtocolError(f"w_min must be in [0, 1], got {w_min}")
        updated: list[CoveredRegion] = []
        for region in self._regions:
            if region.w_min >= w_min and box.contains_box(region.box):
                continue  # subsumed by the new, finer coverage
            if region.w_min >= w_min and region.box.intersects(box):
                # Keep only the part outside the new box.
                for rest in region.box.difference(box):
                    updated.append(CoveredRegion(rest, region.w_min))
                continue
            updated.append(region)
        updated.append(CoveredRegion(box, w_min))
        self._regions = updated
        self._compact()

    def _compact(self) -> None:
        if len(self._regions) <= self._max_fragments:
            return
        # Drop the smallest, coarsest fragments first: losing them only
        # costs a potential re-fetch, never correctness.
        self._regions.sort(key=lambda r: (-r.w_min, r.box.volume))
        self._regions = self._regions[
            len(self._regions) - self._max_fragments :
        ]

    def clear(self) -> None:
        self._regions.clear()

    def __repr__(self) -> str:
        return f"CoverageMap({len(self._regions)} regions)"
