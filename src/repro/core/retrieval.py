"""Algorithm 1: ContinuousDataRetrieval.

The client-side incremental retrieval loop of Section IV.  At each
timestamp the client compares the current query frame ``Q_t`` with the
previous one and requests only what it is missing:

* overlap ``O_t = Q_t intersect Q_{t-1}`` -- if the required resolution
  *increased* (lower ``w_min``), fetch just the incremental coefficient
  band ``[w_t, w_{t-1})`` for the overlap;
* new region ``N_t = Q_t - Q_{t-1}`` (decomposed into disjoint
  rectangles, each executed as its own sub-query) at the full band
  ``[w_t, 1.0]``;
* no overlap -- fetch all of ``Q_t`` at ``[w_t, 1.0]``.

The client also reports every record uid it already holds so the server
filters residual duplicates (the Figure 3 filtering step), and feeds
received coefficients into per-object
:class:`~repro.wavelets.synthesis.ProgressiveMesh` instances so the
currently renderable geometry is always materialisable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.coverage import CoverageMap
from repro.core.resolution import LinearMapper, SpeedResolutionMapper, clamp_speed
from repro.errors import ProtocolError
from repro.geometry.box import Box
from repro.net.link import WirelessLink
from repro.net.messages import RegionRequest, RetrieveBatchResponse, RetrieveRequest
from repro.net.simclock import SimClock
from repro.server.server import Server
from repro.store.uids import EMPTY_UIDS, UidSet
from repro.wavelets.synthesis import ProgressiveMesh

__all__ = ["RetrievalStep", "PreparedStep", "ContinuousRetrievalClient"]


@dataclass(frozen=True)
class RetrievalStep:
    """Outcome of one query-frame step."""

    timestamp: float
    query_box: Box
    speed: float
    w_min: float
    sub_queries: int
    records_received: int
    payload_bytes: int
    io_node_reads: int
    elapsed_s: float
    filtered_out: int

    @property
    def contacted_server(self) -> bool:
        return self.sub_queries > 0


@dataclass(frozen=True)
class PreparedStep:
    """A planned-and-answered query frame awaiting its wire transfer.

    :meth:`ContinuousRetrievalClient.prepare_step` produces one;
    :meth:`ContinuousRetrievalClient.finalize_step` integrates it into
    the client state once the transfer's cost is known.  Splitting the
    two lets an external driver (the session engine, a fleet's shared
    uplink) own the transport in between.
    """

    timestamp: float
    query_box: Box
    speed: float
    w_min: float
    regions: tuple[RegionRequest, ...]
    response: RetrieveBatchResponse | None

    @property
    def contacted(self) -> bool:
        return self.response is not None

    @property
    def payload_bytes(self) -> int:
        return self.response.payload_bytes if self.response is not None else 0

    @property
    def io_node_reads(self) -> int:
        return self.response.io_node_reads if self.response is not None else 0

    @property
    def record_count(self) -> int:
        return self.response.record_count if self.response is not None else 0

    @property
    def filtered_out(self) -> int:
        return self.response.filtered_out if self.response is not None else 0


class ContinuousRetrievalClient:
    """A mobile client running Algorithm 1 against a server.

    Parameters
    ----------
    server:
        The data server (shared by many clients in experiments).
    link:
        Wireless link model used for time accounting.
    clock:
        Simulated clock advanced by each exchange.
    client_id:
        Distinguishes this client's state on the server.
    mapper:
        Speed -> ``w_min`` mapping (default: the paper's linear one).
    track_meshes:
        When True, maintain :class:`ProgressiveMesh` state so the
        current renderable geometry can be materialised (costs memory;
        experiments that only need byte accounting switch it off).
    use_coverage:
        When True, plan regions against a :class:`CoverageMap` of
        *everything* fetched so far instead of only the previous frame
        -- a client looping back over old ground then skips requests
        entirely (semantic caching; see :mod:`repro.core.coverage`).
    """

    def __init__(
        self,
        server: Server,
        link: WirelessLink,
        clock: SimClock,
        *,
        client_id: int = 0,
        mapper: SpeedResolutionMapper | None = None,
        track_meshes: bool = False,
        use_coverage: bool = False,
    ) -> None:
        self._server = server
        self._link = link
        self._clock = clock
        self._client_id = client_id
        self._mapper = mapper if mapper is not None else LinearMapper()
        self._track_meshes = track_meshes
        self._prev_box: Box | None = None
        self._prev_w_min: float | None = None
        self._coverage: CoverageMap | None = CoverageMap() if use_coverage else None
        self._sent_uids: UidSet = EMPTY_UIDS
        self._meshes: dict[int, ProgressiveMesh] = {}
        self._steps: list[RetrievalStep] = []

    # -- accessors -------------------------------------------------------------------

    @property
    def client_id(self) -> int:
        return self._client_id

    @property
    def mapper(self) -> SpeedResolutionMapper:
        """The speed -> ``w_min`` mapping this client retrieves at."""
        return self._mapper

    @property
    def link(self) -> WirelessLink:
        """The link :meth:`step` bills its own exchanges to."""
        return self._link

    @property
    def steps(self) -> list[RetrievalStep]:
        return list(self._steps)

    @property
    def total_bytes(self) -> int:
        return sum(s.payload_bytes for s in self._steps)

    @property
    def total_io(self) -> int:
        return sum(s.io_node_reads for s in self._steps)

    @property
    def received_record_count(self) -> int:
        return len(self._sent_uids)

    @property
    def sent_uids(self) -> UidSet:
        """Every record uid this client has received (packed set)."""
        return self._sent_uids

    def forget_history(self) -> None:
        """Drop the delivered-data set (ablation: no-reship filter off)."""
        self._sent_uids = EMPTY_UIDS

    def mesh_of(self, object_id: int) -> ProgressiveMesh:
        """Client-side progressive state of one object."""
        if object_id not in self._meshes:
            raise ProtocolError(
                f"client holds no data for object {object_id} "
                "(was track_meshes enabled?)"
            )
        return self._meshes[object_id]

    def known_objects(self) -> list[int]:
        return sorted(self._meshes)

    # -- the algorithm ----------------------------------------------------------------

    def plan_regions(self, query_box: Box, w_min: float) -> list[RegionRequest]:
        """Algorithm 1's region planning (lines 1.1-1.10), side-effect free.

        Returns the list of (region, band) sub-queries to execute; empty
        when the client provably already has everything it needs.  With
        coverage enabled, planning diffs against the full fetch history
        rather than only the previous frame.
        """
        if self._coverage is not None:
            return [
                RegionRequest(
                    piece.box, piece.w_min, piece.w_max, half_open=piece.half_open
                )
                for piece in self._coverage.missing(query_box, w_min)
            ]
        if self._prev_box is None:
            return [RegionRequest(query_box, w_min, 1.0)]
        overlap = query_box.intersection(self._prev_box)
        if overlap is None:
            return [RegionRequest(query_box, w_min, 1.0)]
        new_pieces = query_box.difference(self._prev_box)
        regions = [
            RegionRequest(piece, w_min, 1.0) for piece in new_pieces
        ]
        prev_w = self._prev_w_min if self._prev_w_min is not None else 1.0
        if w_min < prev_w:
            # Resolution increased: incremental band for the overlap.
            regions.append(RegionRequest(overlap, w_min, prev_w, half_open=True))
        return regions

    def prepare_step(
        self,
        position: np.ndarray,
        speed: float,
        query_box: Box,
        *,
        now: float | None = None,
    ) -> PreparedStep:
        """Plan one query frame and answer it server-side.

        Nothing is integrated into the client state yet: the caller
        transports the payload however it likes (own link, resilient
        exchanger, shared fleet uplink) and then calls
        :meth:`finalize_step` with the transfer's cost.  ``now``
        overrides the request timestamp (an external driver's kernel
        time); by default the client's own clock is read.
        """
        speed = clamp_speed(speed)
        w_min = float(self._mapper(speed))
        regions = tuple(self.plan_regions(query_box, w_min))
        timestamp = self._clock.now if now is None else now
        response = None
        if regions:
            request = RetrieveRequest(
                timestamp=timestamp,
                client_id=self._client_id,
                regions=regions,
                exclude_uids=self._sent_uids,
            )
            response = self._server.execute_batch(request)
        return PreparedStep(
            timestamp=timestamp,
            query_box=query_box,
            speed=speed,
            w_min=w_min,
            regions=regions,
            response=response,
        )

    def finalize_step(self, prepared: PreparedStep, elapsed_s: float) -> RetrievalStep:
        """Integrate a prepared step's data and advance the planning state.

        ``elapsed_s`` is whatever the transfer cost the caller's
        transport; it is recorded, not re-derived.  The client's clock
        is *not* advanced -- drivers that own a clock advance it
        themselves.
        """
        if prepared.response is not None:
            self._integrate(prepared.response)
        result = RetrievalStep(
            timestamp=prepared.timestamp,
            query_box=prepared.query_box,
            speed=prepared.speed,
            w_min=prepared.w_min,
            sub_queries=len(prepared.regions),
            records_received=prepared.record_count,
            payload_bytes=prepared.payload_bytes,
            io_node_reads=prepared.io_node_reads,
            elapsed_s=elapsed_s,
            filtered_out=prepared.filtered_out,
        )
        self._prev_box = prepared.query_box
        self._prev_w_min = prepared.w_min
        if self._coverage is not None:
            self._coverage.add(prepared.query_box, prepared.w_min)
        self._steps.append(result)
        return result

    def step(self, position: np.ndarray, speed: float, query_box: Box) -> RetrievalStep:
        """Process one query frame: plan, retrieve, integrate, account."""
        prepared = self.prepare_step(position, speed, query_box)
        elapsed = 0.0
        if prepared.contacted:
            elapsed = self._link.exchange(
                prepared.payload_bytes, speed=prepared.speed, now=prepared.timestamp
            )
            self._clock.advance(elapsed)
        return self.finalize_step(prepared, elapsed)

    def _integrate(self, response: RetrieveBatchResponse) -> None:
        for payload in response.base_meshes:
            if self._track_meshes:
                mesh = self._meshes.setdefault(
                    payload.object_id, ProgressiveMesh(payload.object_id)
                )
                mesh.set_base(payload.mesh, payload.size_bytes)
            else:
                self._meshes.setdefault(
                    payload.object_id, ProgressiveMesh(payload.object_id)
                )
        batch = response.batch
        # The delivered-set update is one sorted merge of packed arrays.
        self._sent_uids = self._sent_uids.union(batch.uids)
        if not self._track_meshes:
            return
        for record, displacement in zip(batch.records(), batch.displacements()):
            mesh = self._meshes.setdefault(
                record.object_id, ProgressiveMesh(record.object_id)
            )
            if record.key.is_base:
                continue  # base geometry arrives via the base mesh payload
            mesh.receive(record, np.asarray(displacement))
