#!/usr/bin/env python
"""Benchmark regression gate.

Compares a freshly produced benchmark document against the committed
reference (``BENCH_datapath.json`` / ``BENCH_index.json`` /
``BENCH_serve.json``) and fails when a speedup ratio regressed beyond
the tolerance, or when a parity flag (``identical_*``) that the
reference asserts is no longer true.

Only *ratios* are compared -- absolute seconds differ across machines,
but "columnar is Nx faster than per-record on the same box" should
hold anywhere.  The tolerance is deliberately generous because CI
runners are noisy and smoke runs use a smaller dataset than the
committed full-scale documents; the gate exists to catch the order-of-
magnitude regressions (a vectorised path silently falling back to a
Python loop), not 10% jitter.

Usage::

    python scripts/bench_gate.py --fresh out.json --committed BENCH_index.json
    python scripts/bench_gate.py --fresh out.json --committed BENCH_index.json \
        --tolerance 0.5
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_TOLERANCE = 0.5


def iter_metrics(document: dict) -> list[tuple[str, str, object]]:
    """Flatten ``section.key`` leaves we gate on: speedups and flags.

    Sections nest (``scatter_gather.shm_gather``,
    ``fleet_tick.sweep[...]``): dict values recurse with dotted section
    paths so a gated ratio can live at any depth.  Lists are skipped --
    scaling-curve points carry machine-specific absolute times, never
    gated ratios.
    """
    out: list[tuple[str, str, object]] = []
    for section, body in document.items():
        if not isinstance(body, dict):
            continue
        for key, value in body.items():
            if key == "speedup" or key.endswith("_speedup"):
                out.append((section, key, float(value)))
            elif key.startswith("identical_"):
                out.append((section, key, bool(value)))
            elif isinstance(value, dict):
                out.extend(
                    (f"{section}.{sub_section}", sub_key, sub_value)
                    for sub_section, sub_key, sub_value in iter_metrics(
                        {key: value}
                    )
                )
    return out


def compare(fresh: dict, committed: dict, tolerance: float) -> list[str]:
    """Every committed metric must hold in the fresh document."""
    failures: list[str] = []
    fresh_metrics = {
        (section, key): value for section, key, value in iter_metrics(fresh)
    }
    for section, key, reference in iter_metrics(committed):
        value = fresh_metrics.get((section, key))
        label = f"{section}.{key}"
        if value is None:
            failures.append(f"{label}: missing from fresh document")
        elif isinstance(reference, bool):
            if reference and not value:
                failures.append(f"{label}: parity flag regressed to false")
        else:
            floor = reference * (1.0 - tolerance)
            assert isinstance(value, float)
            if value < floor:
                failures.append(
                    f"{label}: {value:.2f}x below floor {floor:.2f}x "
                    f"(committed {reference:.2f}x, tolerance {tolerance:.0%})"
                )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fresh", type=Path, required=True,
        help="benchmark JSON produced by this run",
    )
    parser.add_argument(
        "--committed", type=Path, required=True,
        help="committed reference JSON (BENCH_*.json)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed fractional speedup loss vs committed (default %(default)s)",
    )
    args = parser.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        parser.error(f"tolerance must be in [0, 1), got {args.tolerance}")
    fresh = json.loads(args.fresh.read_text())
    committed = json.loads(args.committed.read_text())
    failures = compare(fresh, committed, args.tolerance)
    if failures:
        for failure in failures:
            print(f"BENCH REGRESSION: {failure}", file=sys.stderr)
        return 1
    gated = len(iter_metrics(committed))
    print(
        f"bench gate ok: {gated} metric(s) from {args.committed} "
        f"hold in {args.fresh} (tolerance {args.tolerance:.0%})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
