#!/usr/bin/env sh
# One-shot correctness gate: reprolint + ruff + mypy + tier-1 tests.
#
# ruff and mypy are optional in the offline image; when a tool is not
# installed it is reported as skipped, never silently passed.
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

echo "== reprolint =="
python -m repro.analysis src/repro

echo "== ruff =="
if command -v ruff >/dev/null 2>&1; then
    ruff check src tests
else
    echo "ruff not installed -- skipped"
fi

echo "== mypy (strict: core, geometry, net, index, sim) =="
if command -v mypy >/dev/null 2>&1; then
    mypy -p repro.core -p repro.geometry -p repro.net -p repro.index -p repro.sim
else
    echo "mypy not installed -- skipped"
fi

echo "== pytest (tier-1) =="
python -m pytest -x -q
