#!/usr/bin/env sh
# One-shot correctness gate: reprolint (per-file + whole-program),
# ruff, mypy, and the tier-1 tests.
#
# Default mode tolerates the offline image: when ruff or mypy is not
# installed it is reported as skipped, never silently passed.  CI runs
# `scripts/check.sh --strict`, under which a missing or wrongly-pinned
# tool is a hard failure (pins live in [tool.check] in pyproject.toml).
set -eu

STRICT=0
for arg in "$@"; do
    case "$arg" in
        --strict) STRICT=1 ;;
        *) echo "usage: check.sh [--strict]" >&2; exit 2 ;;
    esac
done

cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

pinned_version() {
    python - "$1" <<'EOF'
import sys, tomllib
with open("pyproject.toml", "rb") as fh:
    data = tomllib.load(fh)
print(data.get("tool", {}).get("check", {}).get(sys.argv[1], ""))
EOF
}

require_tool() {
    # require_tool NAME INSTALLED_VERSION -- enforce the [tool.check] pin.
    tool="$1"
    installed="$2"
    pin="$(pinned_version "$tool")"
    if [ -z "$pin" ]; then
        echo "$tool: no [tool.check] pin in pyproject.toml" >&2
        exit 2
    fi
    if [ "$installed" != "$pin" ]; then
        if [ "$STRICT" -eq 1 ]; then
            echo "$tool: installed $installed does not match pin $pin" >&2
            exit 1
        fi
        echo "$tool: installed $installed != pinned $pin (ignored; --strict enforces)"
    fi
}

missing_tool() {
    if [ "$STRICT" -eq 1 ]; then
        echo "$1 not installed -- required under --strict" >&2
        exit 1
    fi
    echo "$1 not installed -- skipped"
}

echo "== reprolint (whole-program) =="
python -m repro.analysis --project src

echo "== reprolint self-test (seeded fixture must fail) =="
# The gate only means something if a real violation still trips it:
# the committed fixture package carries known RL009 findings and the
# project pass must exit with status exactly 1 on it (2 would be a
# crash or a configuration error, 0 a silently broken analyser).
status=0
python -m repro.analysis --quiet --no-config --select RL009 \
    --project tests/analysis/fixtures/project/rng_bad >/dev/null || status=$?
if [ "$status" -ne 1 ]; then
    echo "reprolint self-test failed: expected exit 1, got $status" >&2
    exit 1
fi
echo "ok (exit 1 as expected)"

echo "== ruff =="
if command -v ruff >/dev/null 2>&1; then
    require_tool ruff "$(ruff --version | awk '{print $2}')"
    ruff check src tests
else
    missing_tool ruff
fi

echo "== mypy (strict: core, geometry, net, index, sim) =="
if command -v mypy >/dev/null 2>&1; then
    require_tool mypy "$(mypy --version | awk '{print $2}')"
    mypy -p repro.core -p repro.geometry -p repro.net -p repro.index -p repro.sim
else
    missing_tool mypy
fi

echo "== pytest (tier-1) =="
python -m pytest -x -q
