"""Quickstart: a mobile client streaming a 3-D city over a wireless link.

Builds a small procedural city, starts a continuous retrieval client
(Algorithm 1 of the paper), walks it through the city at two speeds, and
shows how the speed-to-resolution mapping changes what crosses the link.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import ContinuousRetrievalClient
from repro.geometry import Box
from repro.net import SimClock, WirelessLink
from repro.server import Server
from repro.workloads import CityConfig, build_city


def run_walk(server: Server, client_id: int, speed: float) -> None:
    """Walk a straight street at ``speed`` and report the traffic."""
    server.reset_client(client_id)
    link = WirelessLink()
    client = ContinuousRetrievalClient(
        server, link, SimClock(), client_id=client_id, track_meshes=True
    )
    y = 500.0
    for i in range(25):
        x = 100.0 + 30.0 * i
        frame = Box.from_center((x, y), (150.0, 150.0))
        client.step(np.array([x, y]), speed, frame)
    print(f"speed={speed:.2f}  w_min={speed:.2f}")
    print(f"  bytes over the link : {client.total_bytes}")
    print(f"  records received    : {client.received_record_count}")
    print(f"  server I/O (pages)  : {client.total_io}")
    print(f"  link time           : {link.total_time:.2f}s")
    if client.known_objects():
        oid = client.known_objects()[0]
        mesh = client.mesh_of(oid).current_mesh()
        print(
            f"  object {oid} renders with {mesh.vertex_count} vertices / "
            f"{mesh.face_count} faces"
        )
    print()


def main() -> None:
    space = Box((0.0, 0.0), (1000.0, 1000.0))
    print("Building a 12-object procedural city...")
    db = build_city(
        CityConfig(
            space=space,
            object_count=12,
            levels=3,
            seed=7,
            min_size_frac=0.02,
            max_size_frac=0.05,
        )
    )
    print(
        f"  {db.object_count} objects, {db.record_count} wavelet records, "
        f"{db.total_bytes / 1024:.1f} KB at full resolution\n"
    )
    server = Server(db)

    # A slow stroller sees full detail; a tram rider gets the coarse city.
    run_walk(server, client_id=1, speed=0.05)
    run_walk(server, client_id=2, speed=0.9)

    print(
        "The fast client retrieved a fraction of the slow client's bytes -- "
        "that is the paper's motion-aware retrieval in one picture."
    )


if __name__ == "__main__":
    main()
