"""Progressive refinement of a single landmark.

The rescue-officer scenario from the paper's introduction: a client
approaches a building and slows down; as its speed drops, Algorithm 1
retrieves ever finer wavelet coefficient bands and the client-side
:class:`~repro.wavelets.synthesis.ProgressiveMesh` sharpens without ever
re-downloading what it already has.

Run with::

    python examples/progressive_streaming.py
"""

from __future__ import annotations

import numpy as np

from repro.core import ContinuousRetrievalClient
from repro.geometry import Box
from repro.mesh import procedural_landmark, vertex_rmse
from repro.net import SimClock, WirelessLink
from repro.server import ObjectDatabase, Server
from repro.wavelets import analyze_hierarchy


def main() -> None:
    print("Decomposing a landmark (4 wavelet levels)...")
    hierarchy = procedural_landmark(
        np.random.default_rng(5),
        center=(500.0, 500.0, 12.0),
        radius=12.0,
        levels=4,
    )
    decomposition = analyze_hierarchy(hierarchy)
    truth = hierarchy.finest
    print(
        f"  base mesh: {decomposition.base.vertex_count} vertices; "
        f"full mesh: {truth.vertex_count} vertices; "
        f"{decomposition.detail_count} coefficients\n"
    )

    db = ObjectDatabase()
    db.add_object(0, decomposition)
    server = Server(db)
    link = WirelessLink()
    client = ContinuousRetrievalClient(
        server, link, SimClock(), client_id=0, track_meshes=True
    )

    # The client decelerates as it approaches: each step re-queries the
    # same window at a higher resolution (lower w_min); Algorithm 1
    # requests only the incremental band [w_t, w_{t-1}).
    frame = Box.from_center((500.0, 500.0), (80.0, 80.0))
    position = np.array([500.0, 500.0])
    print(f"{'speed':>6} {'w band':>12} {'bytes':>7} {'cum KB':>7} "
          f"{'coeffs':>7} {'RMSE':>9}")
    for speed in (1.0, 0.75, 0.5, 0.25, 0.1, 0.0):
        step = client.step(position, speed, frame)
        mesh = client.mesh_of(0)
        rendered = mesh.current_mesh(levels=decomposition.depth)
        rmse = vertex_rmse(rendered, truth)
        band = f"[{step.w_min:.2f},1.0]"
        print(
            f"{speed:>6.2f} {band:>12} {step.payload_bytes:>7} "
            f"{client.total_bytes / 1024:>7.2f} {mesh.detail_count:>7} "
            f"{rmse:>9.5f}"
        )

    final = client.mesh_of(0).current_mesh(levels=decomposition.depth)
    exact = np.allclose(final.vertices, truth.vertices)
    print(f"\nStationary client's mesh equals the server's original: {exact}")
    print(f"Duplicate bytes re-sent over the link: "
          f"{client.mesh_of(0).duplicate_bytes} (incremental bands never overlap)")


if __name__ == "__main__":
    main()
