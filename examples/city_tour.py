"""An augmented-reality city tour: the paper's motivating scenario.

Simulates a tourist riding a tram through a procedural city with the
full motion-aware stack -- Kalman-predicted prefetching, multi-
resolution buffering, support-region indexing -- and compares it
side-by-side with the naive system (full resolution, LRU, object-level
index) on the same tour.

Run with::

    python examples/city_tour.py
"""

from __future__ import annotations

import numpy as np

from repro.core import MotionAwareSystem, NaiveSystem, SystemConfig
from repro.geometry import Box
from repro.motion import tram_tour
from repro.server import Server
from repro.workloads import CityConfig, build_city


def main() -> None:
    space = Box((0.0, 0.0), (1000.0, 1000.0))
    print("Building the tour city (25 objects, 3 detail levels)...")
    db = build_city(
        CityConfig(
            space=space,
            object_count=25,
            levels=3,
            seed=13,
            min_size_frac=0.02,
            max_size_frac=0.045,
        )
    )
    print(f"  dataset: {db.total_bytes / 1024:.0f} KB full resolution\n")

    config = SystemConfig(
        space=space,
        grid_shape=(20, 20),
        buffer_bytes=32 * 1024,
        query_frac=0.08,
    )

    print(f"{'speed':>6}  {'system':<13} {'avg resp':>9} {'max resp':>9} "
          f"{'bytes':>9} {'contacts':>8}")
    for speed in (0.1, 0.5, 1.0):
        tour = tram_tour(space, np.random.default_rng(99), speed=speed, steps=150)
        for name, factory in (
            ("motion-aware", lambda: MotionAwareSystem(Server(db), config)),
            ("naive", lambda: NaiveSystem(Server(db), config)),
        ):
            result = factory().run(tour)
            print(
                f"{speed:>6.2f}  {name:<13} {result.avg_response_s:>8.3f}s "
                f"{result.max_response_s:>8.3f}s {result.total_bytes:>9} "
                f"{result.contacts:>8}"
            )
        print()

    print(
        "The naive system's response time grows with speed (more objects\n"
        "per second, all at full resolution, over a degraded link); the\n"
        "motion-aware system sheds detail as the tram accelerates."
    )


if __name__ == "__main__":
    main()
