"""Direction-aware retrieval with a view frustum.

A tourist with a head-mounted display only sees what is *in front* of
them.  This example compares three interest shapes for the same walk:

1. the paper's rectangular query frame,
2. a forward view wedge (110-degree field of view),
3. a narrow zoomed-in wedge (40 degrees),

and shows how much data each needs per frame.

Run with::

    python examples/ar_view.py
"""

from __future__ import annotations

import numpy as np

from repro.core import filter_records_in_view, view_wedge
from repro.geometry import Box
from repro.server import Server
from repro.workloads import CityConfig, build_city


def main() -> None:
    space = Box((0.0, 0.0), (1000.0, 1000.0))
    print("Building a dense city (40 objects)...")
    db = build_city(
        CityConfig(
            space=space,
            object_count=40,
            levels=2,
            seed=21,
            min_size_frac=0.02,
            max_size_frac=0.05,
        )
    )
    server = Server(db)
    view_range = 150.0

    # Walk east along a street, looking ahead.
    print(f"\n{'pos x':>6} {'frame B':>8} {'110deg B':>9} {'40deg B':>8} "
          f"{'saving':>7}")
    frame_total = wide_total = narrow_total = 0
    for i in range(12):
        position = np.array([150.0 + 60.0 * i, 500.0])
        velocity = np.array([12.0, 0.0])

        # 1. Rectangular frame covering the same view distance.
        frame = Box.from_center(position, (2 * view_range, 2 * view_range))
        result = db.query_region(frame, 0.3, 1.0)
        frame_bytes = result.total_bytes

        # 2-3. Wedges: server answers the wedge's bounding box, the
        # client drops records outside the actual field of view.
        wide = view_wedge(position, velocity, fov_degrees=110, view_range=view_range)
        narrow = view_wedge(position, velocity, fov_degrees=40, view_range=view_range)
        wide_bytes = sum(
            r.size_bytes
            for r in filter_records_in_view(
                db.query_region(wide.bounding_box(), 0.3, 1.0).records, wide
            )
        )
        narrow_bytes = sum(
            r.size_bytes
            for r in filter_records_in_view(
                db.query_region(narrow.bounding_box(), 0.3, 1.0).records, narrow
            )
        )
        frame_total += frame_bytes
        wide_total += wide_bytes
        narrow_total += narrow_bytes
        saving = 1.0 - (wide_bytes / frame_bytes) if frame_bytes else 0.0
        print(
            f"{position[0]:>6.0f} {frame_bytes:>8} {wide_bytes:>9} "
            f"{narrow_bytes:>8} {saving:>6.0%}"
        )

    print(f"\ntotals: frame={frame_total}  110deg={wide_total}  "
          f"40deg={narrow_total}")
    if frame_total:
        print(
            f"the forward wedge needs {1 - wide_total / frame_total:.0%} less "
            f"data than the rectangle; zooming to 40 degrees saves "
            f"{1 - narrow_total / frame_total:.0%}"
        )


if __name__ == "__main__":
    main()
