"""ASCII visualisation of motion-aware prefetching.

Drives the motion-aware buffer manager along a tram route and renders
the grid each few ticks:

* ``#`` blocks required by the current query frame,
* ``+`` prefetched blocks sitting in the buffer,
* ``.`` other cached blocks,
* ``@`` the client,
* space: uncached.

Watch the ``+`` wake form ahead of the client along its heading -- the
direction-allocated prefetching of Section V in action.

Run with::

    python examples/prefetch_visualizer.py
"""

from __future__ import annotations

import numpy as np

from repro.buffering import MotionAwareBufferManager
from repro.geometry import Box, Grid
from repro.motion import tram_tour


def render(grid: Grid, manager: MotionAwareBufferManager, position, required) -> str:
    home = grid.cell_of_point(position)
    rows = []
    for cy in reversed(range(grid.shape[1])):
        row = []
        for cx in range(grid.shape[0]):
            cell = (cx, cy)
            if cell == home:
                row.append("@")
            elif cell in required:
                row.append("#")
            else:
                block = manager.cache.get(cell)
                if block is None:
                    row.append(" ")
                elif block.prefetched and not block.used:
                    row.append("+")
                else:
                    row.append(".")
        rows.append("".join(row))
    return "\n".join(rows)


def main() -> None:
    space = Box((0.0, 0.0), (1000.0, 1000.0))
    grid = Grid(space, (24, 24))

    def block_bytes(cell, w_min):
        return int(600 * (1.0 - 0.85 * w_min)) + 40

    manager = MotionAwareBufferManager(grid, 48 * 1024, block_bytes)
    tour = tram_tour(space, np.random.default_rng(4), speed=0.6, steps=120)

    for i in range(len(tour)):
        position = tour.positions[i]
        frame = Box.from_center(position, 0.08 * space.extents)
        manager.tick(position, 0.6, frame, 0.6)
        if i % 20 == 10:
            required = set(grid.cells_overlapping(frame))
            print(f"tick {i}  position=({position[0]:.0f}, {position[1]:.0f})")
            print(render(grid, manager, position, required))
            print("-" * grid.shape[0])

    stats = manager.stats
    print(
        f"tour done: hit rate {stats.hit_rate:.2f} over {stats.new_blocks} new "
        f"blocks, utilisation {manager.utilization():.2f}, "
        f"{stats.contacts} server contacts"
    )


if __name__ == "__main__":
    main()
